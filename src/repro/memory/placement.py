"""Page placement: who owns which page of which resource.

Implements the placement policies the paper evaluates:

- **first touch** (the MCM-GPU baseline the paper adopts): a page is
  placed in the DRAM of the first GPM that touches it;
- **interleaved**: pages round-robin across GPMs (the framebuffer of the
  naive single-programming-model baseline);
- **fixed**: all pages on one GPM (master-node framebuffer of classic
  object-level SFR);
- **replicated**: a copy on several GPMs (AFR's duplicated working set);
- **pre-allocation**: the OO-VR PA unit moves a resource's pages to a
  target GPM *before* rendering touches them, turning would-be remote
  reads into local ones at the price of one copy over the links.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.memory.address import Resource


class PlacementPolicy(enum.Enum):
    """Default policy applied when a page is first touched."""

    FIRST_TOUCH = "first-touch"
    INTERLEAVED = "interleaved"


@dataclass
class _Entry:
    """Placement record of one resource."""

    resource: Resource
    #: Owner GPM per page; parallel list over page indices.
    owners: List[int]
    #: GPMs holding a full replica (local reads everywhere in the set).
    replicas: Set[int] = field(default_factory=set)


class PagePlacement:
    """Tracks page ownership for every resource in the system."""

    def __init__(
        self,
        num_gpms: int,
        page_bytes: int,
        policy: PlacementPolicy = PlacementPolicy.FIRST_TOUCH,
    ) -> None:
        if num_gpms <= 0:
            raise ValueError("need at least one GPM")
        if page_bytes <= 0:
            raise ValueError("page size must be positive")
        self.num_gpms = num_gpms
        self.page_bytes = page_bytes
        self.policy = policy
        self._entries: Dict[Tuple[str, int], _Entry] = {}
        self._interleave_cursor = 0
        #: Bytes resident per GPM (replicas counted once per holder).
        self.resident_bytes: List[float] = [0.0] * num_gpms

    # -- internal -----------------------------------------------------------

    def _place_new(self, resource: Resource, toucher: int) -> _Entry:
        pages = resource.num_pages(self.page_bytes)
        if self.policy is PlacementPolicy.FIRST_TOUCH:
            owners = [toucher] * pages
            self.resident_bytes[toucher] += resource.size_bytes
        else:
            owners = []
            for _ in range(pages):
                owner = self._interleave_cursor % self.num_gpms
                self._interleave_cursor += 1
                owners.append(owner)
                self.resident_bytes[owner] += self.page_bytes
        entry = _Entry(resource=resource, owners=owners)
        self._entries[resource.resource_id] = entry
        return entry

    def _entry(self, resource: Resource, toucher: int) -> _Entry:
        entry = self._entries.get(resource.resource_id)
        if entry is None:
            entry = self._place_new(resource, toucher)
        return entry

    # -- queries ---------------------------------------------------------

    def is_placed(self, resource: Resource) -> bool:
        return resource.resource_id in self._entries

    def owner_fractions(self, resource: Resource, toucher: int) -> Dict[int, float]:
        """Fraction of the resource's pages owned by each GPM.

        Touching an unplaced resource places it first (first touch).  If
        ``toucher`` holds a replica, the resource is fully local to it.
        """
        entry = self._entry(resource, toucher)
        if toucher in entry.replicas:
            return {toucher: 1.0}
        total = len(entry.owners)
        fractions: Dict[int, float] = {}
        for owner in entry.owners:
            fractions[owner] = fractions.get(owner, 0.0) + 1.0
        return {gpm: count / total for gpm, count in fractions.items()}

    def local_fraction(self, resource: Resource, gpm: int) -> float:
        """Fraction of the resource local to ``gpm`` (places if needed)."""
        return self.owner_fractions(resource, gpm).get(gpm, 0.0)

    def is_home(self, resource: Resource, gpm: int) -> bool:
        """Whether every page of ``resource`` *originally* lives on ``gpm``.

        Distinguishes the home DRAM from replicas: staging managers skip
        copies for resources homed on the renderer but re-stage replicas
        each frame (segmented memories are refilled per frame).
        """
        entry = self._entries.get(resource.resource_id)
        if entry is None:
            return False
        return all(owner == gpm for owner in entry.owners)

    # -- explicit placement ------------------------------------------------

    def place_fixed(self, resource: Resource, gpm: int) -> None:
        """Place every page of ``resource`` on ``gpm`` (master node)."""
        self._require_unplaced(resource)
        pages = resource.num_pages(self.page_bytes)
        self._entries[resource.resource_id] = _Entry(resource, [gpm] * pages)
        self.resident_bytes[gpm] += resource.size_bytes

    def place_interleaved(self, resource: Resource) -> None:
        """Round-robin ``resource``'s pages across all GPMs."""
        self._require_unplaced(resource)
        pages = resource.num_pages(self.page_bytes)
        owners = [(self._interleave_cursor + i) % self.num_gpms for i in range(pages)]
        self._interleave_cursor += pages
        for owner in owners:
            self.resident_bytes[owner] += self.page_bytes
        self._entries[resource.resource_id] = _Entry(resource, owners)

    def place_striped(self, resource: Resource, stripes: Sequence[int]) -> None:
        """Partition pages contiguously across ``stripes`` (DHC layout).

        Page ``i`` goes to ``stripes[i * len(stripes) // pages]`` — i.e.
        equal contiguous spans, matching the vertical framebuffer split
        of the distributed hardware composition unit (Fig. 14).
        """
        self._require_unplaced(resource)
        if not stripes:
            raise ValueError("need at least one stripe owner")
        pages = resource.num_pages(self.page_bytes)
        owners = [stripes[min(i * len(stripes) // pages, len(stripes) - 1)]
                  for i in range(pages)]
        for owner in owners:
            self.resident_bytes[owner] += self.page_bytes
        self._entries[resource.resource_id] = _Entry(resource, owners)

    def replicate(self, resource: Resource, gpms: Iterable[int]) -> None:
        """Add full replicas of ``resource`` on ``gpms`` (AFR duplication)."""
        gpm_list = list(gpms)
        entry = self._entries.get(resource.resource_id)
        if entry is None:
            if not gpm_list:
                raise ValueError("replicate needs at least one GPM")
            entry = _Entry(
                resource,
                [gpm_list[0]] * resource.num_pages(self.page_bytes),
            )
            self._entries[resource.resource_id] = entry
            self.resident_bytes[gpm_list[0]] += resource.size_bytes
        for gpm in gpm_list:
            if gpm not in entry.replicas:
                entry.replicas.add(gpm)
                self.resident_bytes[gpm] += resource.size_bytes

    def preallocate(self, resource: Resource, gpm: int) -> float:
        """PA-unit copy: make ``resource`` local to ``gpm``.

        Returns the bytes that must be copied over the links.  Never-
        touched resources are simply placed on ``gpm`` (first touch by
        the PA unit itself — free).  Already-placed resources gain a
        *replica*: render assets are read-only, so the PA duplicates
        pages instead of migrating them, and a resource shared by
        batches on several GPMs ends up resident on each — subsequent
        frames pay nothing.  The caller accounts the copy on the
        fabric; the distribution engine overlaps it with rendering of
        the previous batch.
        """
        entry = self._entries.get(resource.resource_id)
        if entry is None:
            # Never touched: first touch will land it locally for free.
            self._place_new(resource, gpm)
            return 0.0
        if gpm in entry.replicas:
            return 0.0
        local_pages = sum(1 for owner in entry.owners if owner == gpm)
        if local_pages == len(entry.owners):
            return 0.0
        missing_bytes = float(
            (len(entry.owners) - local_pages) * self.page_bytes
        )
        entry.replicas.add(gpm)
        self.resident_bytes[gpm] += missing_bytes
        return missing_bytes

    def migrate(self, resource: Resource, gpm: int) -> float:
        """Re-home every page of ``resource`` onto ``gpm``.

        Unlike :meth:`preallocate` (which replicates read-only assets),
        migration *moves* ownership — the policy studied by the NUMA-GPU
        line of work the paper builds on.  Returns the bytes that cross
        the links for the move; unplaced resources place directly on
        ``gpm`` for free.  Existing replicas are dropped (they would be
        stale under a writable-page model).
        """
        if not 0 <= gpm < self.num_gpms:
            raise ValueError(f"GPM {gpm} out of range")
        entry = self._entries.get(resource.resource_id)
        if entry is None:
            self._place_new(resource, gpm)
            return 0.0
        moved_pages = 0
        for index, owner in enumerate(entry.owners):
            if owner != gpm:
                self.resident_bytes[owner] -= self.page_bytes
                self.resident_bytes[gpm] += self.page_bytes
                entry.owners[index] = gpm
                moved_pages += 1
        for replica in entry.replicas:
            if replica != gpm:
                self.resident_bytes[replica] -= resource.size_bytes
        entry.replicas.clear()
        return float(moved_pages * self.page_bytes)

    # -- maintenance -----------------------------------------------------

    def _require_unplaced(self, resource: Resource) -> None:
        if resource.resource_id in self._entries:
            raise ValueError(f"resource {resource.resource_id} already placed")

    def reset(self) -> None:
        """Forget all placements (new frame in a fresh memory image)."""
        self._entries.clear()
        self._interleave_cursor = 0
        self.resident_bytes = [0.0] * self.num_gpms

    @property
    def total_resident_bytes(self) -> float:
        """Memory footprint across all GPMs, replicas included."""
        return sum(self.resident_bytes)
