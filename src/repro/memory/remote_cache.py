"""The MCM-GPU style remote cache.

The paper's baseline adopts the first-touch + remote-cache optimisations
of Arunkumar et al. (MCM-GPU, ISCA'17): each GPM dedicates a slice of
SRAM to caching *remote* data, because the memory-side local L2 can only
cache local DRAM addresses.  The remote cache is small (hundreds of KB),
so it filters repeated remote reads within a draw but cannot hold a
frame's worth of shared textures.

The model is working-set based, like the L1/L2 analytic model: per
work-unit, the remote request stream to each peer is filtered by the hit
rate the cache achieves on that unit's remote working set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import working_set_hit_rate


@dataclass
class RemoteCache:
    """One GPM's remote-data cache."""

    capacity_bytes: float
    #: Fraction of capacity usable per work unit: tens of draws run
    #: concurrently across the GPM's SMs and conflict-miss each other,
    #: so one unit's remote working set only ever holds a small slice
    #: of the cache (MCM-GPU reports remote caches help GPGPU streams,
    #: not texture-filtered rendering).
    effectiveness: float = 0.06

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity cannot be negative")
        if not 0.0 < self.effectiveness <= 1.0:
            raise ValueError("effectiveness must be in (0, 1]")
        self.hits_bytes = 0.0
        self.miss_bytes = 0.0

    def filter(self, stream_bytes: float, unique_bytes: float) -> float:
        """Bytes that still cross the link after the cache.

        ``stream_bytes`` is the post-L1 remote request stream and
        ``unique_bytes`` its distinct footprint.  Compulsory misses
        always cross; reuse within the unit hits if the footprint fits.
        """
        if stream_bytes <= 0:
            return 0.0
        if self.capacity_bytes == 0:
            self.miss_bytes += stream_bytes
            return stream_bytes
        unique = max(min(unique_bytes, stream_bytes), 1e-9)
        reuse = max(1.0, stream_bytes / unique)
        hit = working_set_hit_rate(
            unique, self.capacity_bytes * self.effectiveness, reuse
        )
        crossing = stream_bytes * (1.0 - hit)
        crossing = max(crossing, min(unique, stream_bytes))
        self.hits_bytes += stream_bytes - crossing
        self.miss_bytes += crossing
        return crossing

    @property
    def hit_rate(self) -> float:
        total = self.hits_bytes + self.miss_bytes
        return self.hits_bytes / total if total else 0.0

    def reset(self) -> None:
        self.hits_bytes = 0.0
        self.miss_bytes = 0.0
