"""The four-step VR rendering pipeline (Fig. 2).

Converts scheduled draws into :class:`~repro.pipeline.workunit.WorkUnit`
objects carrying stage work counts and memory touches, and prices them
in cycles:

1. **Geometry process + multi-projection** (:mod:`repro.pipeline.smp`)
   — vertex shading, cull/clip survival, and the SMP engine duplicating
   projections for the left/right eyes;
2. **Rasterisation** (:mod:`repro.pipeline.raster`) — 16x16 tiling and
   strip-overlap math for the tile-SFR schemes;
3. **Fragment process** (:mod:`repro.pipeline.fragment`) — shading and
   texture sampling demand, cache-filtered into stream/unique bytes;
4. **Colour output and composition** (:mod:`repro.pipeline.rop`) —
   per-draw ROP writes plus master vs. distributed composition pricing.

:mod:`repro.pipeline.characterize` assembles stages 1-4 into work units;
:mod:`repro.pipeline.timing` prices a unit in cycles on one GPM.
"""

from repro.pipeline.workunit import WorkUnit
from repro.pipeline.smp import SMPEngine, SMPMode
from repro.pipeline.batch import (
    FrameCounters,
    frame_counters,
    work_units_from_counters,
)
from repro.pipeline.characterize import DrawCharacterizer
from repro.pipeline.timing import StageBreakdown, price_work_unit, price_work_units

__all__ = [
    "WorkUnit",
    "SMPEngine",
    "SMPMode",
    "DrawCharacterizer",
    "FrameCounters",
    "frame_counters",
    "work_units_from_counters",
    "StageBreakdown",
    "price_work_unit",
    "price_work_units",
]
