"""Rasterisation helpers: tiles, strips, and overlap shares.

The raster engine walks 16x16 pixel tiles (Table 2).  For the tile-level
SFR schemes the interesting question is geometric: given an object's
screen rectangle and a strip decomposition of the screen, how much of
the object's fragment work and how much of its *geometry* lands in each
strip?  Fragments split by covered area; geometry does not split —
every strip whose rectangle the object overlaps must process the
triangles that might touch it (sort-first redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.scene.geometry import Viewport

#: Raster tile edge in pixels (16x16 tiled rasterisation, Table 2).
TILE_EDGE = 16


def tile_count(viewport: Viewport) -> int:
    """Number of 16x16 tiles a rectangle touches (ceiling per axis)."""
    if viewport.area == 0:
        return 0
    tiles_x = int(-(-viewport.width // TILE_EDGE))
    tiles_y = int(-(-viewport.height // TILE_EDGE))
    return max(1, tiles_x) * max(1, tiles_y)


@dataclass(frozen=True)
class StripShare:
    """One strip's share of a draw's work."""

    strip_index: int
    #: Fraction of the draw's fragments falling in this strip.
    pixel_share: float
    #: Fraction of the draw's triangles this strip must process.
    geometry_share: float


def strip_shares(
    viewports: Sequence[Viewport], strips: Sequence[Viewport]
) -> List[StripShare]:
    """How a draw spanning ``viewports`` splits across ``strips``.

    Pixel shares are exact area fractions.  The geometry share of an
    overlapped strip is the full mesh: a sort-first renderer cannot know
    which triangles land where without transforming them, so each
    overlapping strip transforms the whole object (this is the
    "object overlapping across the tiles" redundancy of Section 4.2).
    Strips with no overlap contribute nothing.
    """
    total_area = sum(v.area for v in viewports)
    shares: List[StripShare] = []
    for index, strip in enumerate(strips):
        overlap_area = 0.0
        overlaps = False
        for viewport in viewports:
            inter = viewport.intersection(strip)
            if inter is not None:
                overlap_area += inter.area
                overlaps = True
        if not overlaps:
            continue
        pixel_share = overlap_area / total_area if total_area else 0.0
        if pixel_share <= 0.0:
            # Degenerate overlap (zero-area sliver): the strip still
            # pays geometry to discover it owns no pixels.
            pixel_share = 0.0
        shares.append(
            StripShare(
                strip_index=index,
                pixel_share=pixel_share,
                geometry_share=1.0,
            )
        )
    return shares


def normalize_pixel_shares(shares: List[StripShare]) -> List[StripShare]:
    """Rescale pixel shares to sum to 1 (guard against clipped slivers)."""
    total = sum(s.pixel_share for s in shares)
    if total <= 0:
        if not shares:
            return shares
        equal = 1.0 / len(shares)
        return [
            StripShare(s.strip_index, equal, s.geometry_share) for s in shares
        ]
    return [
        StripShare(s.strip_index, s.pixel_share / total, s.geometry_share)
        for s in shares
    ]
