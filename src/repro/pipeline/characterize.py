"""Draw characterisation: scheduled draws -> priced work units.

The :class:`DrawCharacterizer` is the front half of the pipeline model:
it runs the geometry/SMP stage maths and the fragment-stage demand model
to produce a :class:`~repro.pipeline.workunit.WorkUnit` the GPM layer
can execute.  It is deliberately free of any NUMA knowledge — the same
unit can be bound to any GPM, split across strips, or merged into
batches.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Tuple

from repro.config import CostModel, SystemConfig
from repro.memory.address import Touch, vertex_resource
from repro.pipeline.batch import frame_counters, work_units_from_counters
from repro.pipeline.fragment import depth_and_color_demand, texture_touches_for_draw
from repro.pipeline.smp import GeometryWork, SMPEngine, SMPMode
from repro.pipeline.workunit import WorkUnit
from repro.profiling import add_counter, phase
from repro.reuse import get_cache
from repro.scene.objects import Eye, StereoDraw

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scene.scene import Frame


class DrawCharacterizer:
    """Builds work units from scheduled draws under a cost model."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.cost = config.cost
        self.smp = SMPEngine(config.cost)

    def characterize(
        self,
        draw: StereoDraw,
        mode: SMPMode = SMPMode.SIMULTANEOUS,
        label: Optional[str] = None,
    ) -> WorkUnit:
        """Price ``draw`` into a work unit.

        ``mode`` selects SMP behaviour for ``Eye.BOTH`` draws; per-eye
        draws ignore it.  SMP multi-view draws share texture footprints
        across the two views (``view_reuse=2``), which is the texture
        half of the paper's "data locality between the left and right
        views of the same object".
        """
        cost = self.cost
        geometry = self.smp.geometry_work(draw, mode)
        fragments = draw.fragments
        pixels = draw.covered_pixels

        multi_view = draw.eye is Eye.BOTH and mode is SMPMode.SIMULTANEOUS
        view_reuse = 2.0 if multi_view else 1.0
        texel_requests, texture_touches = texture_touches_for_draw(
            draw.textures, fragments, cost, view_reuse=view_reuse
        )
        z_stream, z_unique, fb_write = depth_and_color_demand(
            fragments, pixels, cost
        )

        mesh = draw.mesh
        vertex_bytes = geometry.vertices * cost.bytes_per_vertex
        vertex_touch = Touch(
            resource=vertex_resource(
                draw.obj.object_id, max(1, mesh.vertex_buffer_bytes)
            ),
            unique_bytes=float(mesh.vertex_buffer_bytes),
            stream_bytes=max(float(mesh.vertex_buffer_bytes), vertex_bytes),
        )

        # Sequential stereo on a BOTH draw issues two passes: the second
        # pass re-reads the textures with no sharing (temporally distant),
        # so streams and uniques both double relative to one view.
        return WorkUnit(
            label=label or f"{draw.obj.name}:{draw.eye.value}",
            views=geometry.views,
            vertices=geometry.vertices,
            triangles_setup=geometry.triangles_setup,
            triangles_raster=geometry.triangles_raster,
            fragments=fragments,
            pixels_out=pixels,
            texel_requests=texel_requests,
            shader_complexity=draw.obj.shader_complexity,
            texture_touches=texture_touches,
            vertex_touches=(vertex_touch,),
            z_stream_bytes=z_stream,
            z_unique_bytes=z_unique,
            fb_write_bytes=fb_write,
            command_bytes=cost.command_bytes_per_draw,
            viewports=draw.viewports(),
        )

    def characterize_frame(
        self,
        frame: "Frame",
        mode: SMPMode = SMPMode.SIMULTANEOUS,
        expansion: str = "multiview",
    ) -> Tuple[WorkUnit, ...]:
        """Price every draw of ``frame`` in one vectorized pass.

        Returns units in draw order: ``expansion="multiview"`` aligns
        with :meth:`Frame.multiview_draws`, ``"stereo"`` with
        :meth:`Frame.stereo_draws`.  Each unit is field-for-field
        identical (touches included) to :meth:`characterize` on the
        corresponding draw — the SoA layout changes the walk, never the
        numbers.

        The result depends only on the frame's object batch and the
        (frozen, hashable) cost model, so it is memoised per process in
        the :mod:`repro.reuse` cache anchored on the frame object:
        grid cells that share a workload share scene-memoised frames,
        and therefore skip re-running Eq. 3 pricing entirely.  The
        returned tuple of frozen work units is immutable, so sharing
        it across cells is safe.

        When a compiled-plan store is active (:mod:`repro.plan.store`)
        and the frame carries a scene-content key, the memo's build
        path consults the store first: a hit replays the persisted
        counter columns through the same
        :func:`~repro.pipeline.batch.work_units_from_counters` walk
        (byte-identical units, same memo anchor), a miss prices the
        frame and persists the counters for every later process sharing
        the store.
        """
        return get_cache().memoize(
            "characterize_frame",
            frame,
            (self.cost, mode, expansion),
            lambda: self._characterize_frame_stored(frame, mode, expansion),
        )

    def _characterize_frame_stored(
        self, frame: "Frame", mode: SMPMode, expansion: str
    ) -> Tuple[WorkUnit, ...]:
        """The memo build path: plan store consulted around the oracle.

        The store load stays *outside* the ``price`` phase — warm-store
        profiles charge it to the ``plan_load_s`` counter instead, so
        the phase table shows the pricing work the store removed.
        """
        from repro.plan.store import (
            active_plan_store,
            cost_fingerprint,
            plan_content_key,
        )

        store = active_plan_store()
        content = plan_content_key(frame)
        if store is None or content is None:
            with phase("price"):
                return self._characterize_frame(frame, mode, expansion)
        fingerprint = cost_fingerprint(self.cost)
        start = time.perf_counter()
        counters = store.get_frame(content, fingerprint, mode, expansion)
        if counters is not None:
            units = work_units_from_counters(
                frame.object_batch, counters, self.cost
            )
            add_counter("plan_store_hit", 1)
            add_counter("plan_load_s", time.perf_counter() - start)
            return units
        add_counter("plan_store_miss", 1)
        start = time.perf_counter()
        with phase("price"):
            batch = frame.object_batch
            counters = frame_counters(
                batch, self.cost, mode=mode, expansion=expansion
            )
            units = work_units_from_counters(batch, counters, self.cost)
        store.put_frame(content, fingerprint, mode, expansion, counters)
        add_counter("plan_build_s", time.perf_counter() - start)
        return units

    def _characterize_frame(
        self, frame: "Frame", mode: SMPMode, expansion: str
    ) -> Tuple[WorkUnit, ...]:
        batch = frame.object_batch
        counters = frame_counters(
            batch, self.cost, mode=mode, expansion=expansion
        )
        return work_units_from_counters(batch, counters, self.cost)

    def characterize_stereo_pair(self, draw: StereoDraw) -> Tuple[WorkUnit, ...]:
        """Both per-eye units of an object (sequential stereo trace)."""
        return tuple(
            self.characterize(eye_draw, mode=SMPMode.SEQUENTIAL)
            for eye_draw in draw.obj.stereo_draws()
        )
