"""Fragment-stage memory demand.

The fragment process is where nearly all of a frame's memory traffic
originates: every fragment samples its material textures (16x
anisotropic filtering multiplies taps), tests depth, and writes colour.
This module turns a draw's fragment count and texture bindings into the
byte quantities the NUMA layer prices:

- **raw texel bytes**: fragments x samples x filter taps x texel size;
- **stream bytes** (post-L1): what leaves the SM cluster.  Texture L1s
  exploit the strong spatial locality of neighbouring fragments, so the
  stream is a calibrated leak fraction of the raw demand, floored at
  the compulsory unique footprint;
- **unique bytes**: the distinct texels the draw touches at its active
  mip level, bounded by both the texture's size and the fragment count.

The split between *stream* and *unique* is what makes NUMA placement
matter: local touches cost ``unique`` bytes of DRAM (the memory-side L2
absorbs re-reads), while remote touches cost ``stream x (1 - remote
cache hit)`` bytes of link bandwidth, because the local L2 cannot cache
remote addresses (Section 2.3 / MCM-GPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.config import CostModel
from repro.memory.address import Touch, texture_resource
from repro.scene.texture import Texture

#: Smallest footprint a texture bind ever touches (a few mip tiles).
MIN_TOUCH_BYTES = 4096.0


@dataclass(frozen=True)
class FragmentDemand:
    """Memory-side demand of one draw's fragment stage."""

    texel_requests: float
    texture_touches: Tuple[Touch, ...]
    z_stream_bytes: float
    z_unique_bytes: float
    fb_write_bytes: float


def texture_touches_for_draw(
    textures: Sequence[Texture],
    fragments: float,
    cost: CostModel,
    view_reuse: float = 1.0,
) -> Tuple[float, Tuple[Touch, ...]]:
    """Texel demand and per-texture touches for ``fragments``.

    ``view_reuse`` models SMP multi-view texture sharing: when the two
    eye views render back-to-back on the same GPM, the second view's
    samples hit the same texels (small disparity), so its *unique*
    contribution collapses.  ``view_reuse=1`` means no sharing (mono or
    sequential stereo); ``2`` means two views share one footprint.
    """
    if fragments < 0:
        raise ValueError("fragments cannot be negative")
    if view_reuse < 1.0:
        raise ValueError("view_reuse is at least 1")
    texel_requests = (
        fragments * cost.samples_per_fragment * cost.anisotropic_texels_per_sample
    )
    raw_bytes = texel_requests * cost.bytes_per_texel
    if not textures or raw_bytes == 0:
        return texel_requests, ()

    total_size = float(sum(t.size_bytes for t in textures))
    touches = []
    for texture in textures:
        weight = texture.size_bytes / total_size
        raw_share = raw_bytes * weight
        # Unique texels: one view's fragments touch ~1 texel each at the
        # matched mip level; capped by the texture itself.
        unique = min(
            float(texture.size_bytes),
            max(
                MIN_TOUCH_BYTES,
                fragments * weight * cost.bytes_per_texel / view_reuse,
            ),
        )
        stream = max(unique, raw_share * cost.l1_texture_leak / view_reuse)
        touches.append(
            Touch(
                resource=texture_resource(texture.texture_id, texture.size_bytes),
                unique_bytes=unique,
                stream_bytes=stream,
            )
        )
    return texel_requests, tuple(touches)


def depth_and_color_demand(
    fragments: float,
    pixels_out: float,
    cost: CostModel,
) -> Tuple[float, float, float]:
    """(z stream, z unique, colour write) bytes for the raster output.

    Every fragment is depth-tested (stream); the touched depth region
    is the covered pixels (unique); survivors write colour.
    """
    if fragments < 0 or pixels_out < 0:
        raise ValueError("counts cannot be negative")
    z_stream = fragments * cost.bytes_per_ztest
    z_unique = pixels_out * cost.bytes_per_ztest
    fb_write = pixels_out * cost.bytes_per_pixel_out
    return z_stream, z_unique, fb_write
