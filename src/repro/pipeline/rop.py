"""Render output and frame composition pricing.

Two consumers:

- the per-draw ROP cost inside :mod:`repro.pipeline.timing` (colour
  writes at 4 pixels/cycle/ROP), and
- the *composition phase* at the end of sort-last rendering, where the
  per-GPM colour outputs are assembled into the final frame.  Classic
  object-level SFR funnels everything through the master node's ROPs;
  the paper's DHC spreads the work over every GPM's ROPs (Section 5.3),
  which is modelled here as a simple throughput division plus the link
  transfers the caller records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import GPMConfig


@dataclass(frozen=True)
class CompositionCost:
    """Cycles and bytes of one frame-composition pass."""

    rop_cycles: float
    pixels: float
    color_bytes: float
    depth_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.color_bytes + self.depth_bytes


def master_composition(
    pixels: float,
    gpm: GPMConfig,
    bytes_per_pixel: float = 4.0,
    depth_bytes_per_pixel: float = 4.0,
) -> CompositionCost:
    """Sort-last composition on a single master GPM.

    All ``pixels`` (the union of every worker's rendered output) funnel
    through one GPM's ROPs; the master also depth-compares overlapping
    contributions, hence the depth byte stream.
    """
    if pixels < 0:
        raise ValueError("pixels cannot be negative")
    return CompositionCost(
        rop_cycles=pixels / gpm.rop_throughput,
        pixels=pixels,
        color_bytes=pixels * bytes_per_pixel,
        depth_bytes=pixels * depth_bytes_per_pixel,
    )


def distributed_composition(
    pixels: float,
    gpm: GPMConfig,
    num_gpms: int,
    bytes_per_pixel: float = 4.0,
    depth_bytes_per_pixel: float = 4.0,
) -> CompositionCost:
    """DHC composition across ``num_gpms`` GPMs' ROPs (Section 5.3).

    The framebuffer is striped so every GPM's ROPs write their own
    partition concurrently: 4 GPMs give 4x the output bandwidth of the
    master-node scheme.  The returned cycle count is the per-GPM
    critical path under a perfectly balanced stripe split.
    """
    if num_gpms <= 0:
        raise ValueError("need at least one GPM")
    base = master_composition(pixels, gpm, bytes_per_pixel, depth_bytes_per_pixel)
    return CompositionCost(
        rop_cycles=base.rop_cycles / num_gpms,
        pixels=pixels,
        color_bytes=base.color_bytes,
        depth_bytes=base.depth_bytes,
    )


def crossing_fraction(num_gpms: int) -> float:
    """Fraction of composed pixels whose stripe lives on another GPM.

    With pixels rendered on a uniformly random GPM relative to their
    stripe owner, ``(n-1)/n`` of composition bytes cross a link — the
    "small number of memory access compared to the main rendering
    phase" the paper accepts in exchange for 4x ROP throughput.
    """
    if num_gpms <= 0:
        raise ValueError("need at least one GPM")
    return (num_gpms - 1) / num_gpms
