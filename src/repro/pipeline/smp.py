"""The Simultaneous Multi-Projection (SMP) engine.

Models the fixed-function unit NVIDIA integrates into each Polymorph
Engine (Section 2.2): geometry is processed **once**, then re-projected
for each eye's viewport by shifting the projection centre.  The paper's
implementation (Section 3) gathers the display X range ``[-W, +W]``,
duplicates each post-geometry triangle, shifts the viewport by ``W/2``
per eye, and clips against the eye boundary so triangles do not spill
into the opposite view.

Here the engine decides, per scheduled draw, how much geometry work each
view costs and what the per-eye viewports are:

- ``Eye.BOTH`` draws: vertex shading x1, triangle setup duplicated per
  view (plus a small re-projection overhead), fragments per eye summed;
- single-eye draws: the conventional pipeline for that view;
- sequential stereo (SMP disabled): the caller simply issues the two
  per-eye draws separately and pays full geometry twice — the 27 %
  SMP-vs-sequential gap of Section 3 falls out of that difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.config import CostModel
from repro.scene.geometry import Viewport
from repro.scene.objects import Eye, StereoDraw


class SMPMode(enum.Enum):
    """How a multi-view draw's projections are produced."""

    #: Geometry once, SMP projects per eye (the hardware path).
    SIMULTANEOUS = "simultaneous"
    #: Two full passes, one per eye (SMP disabled / split across GPMs).
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class GeometryWork:
    """Geometry-stage work for one scheduled draw."""

    vertices: float
    triangles_setup: float
    triangles_raster: float
    views: int


class SMPEngine:
    """Prices geometry work and produces per-eye viewports.

    The engine also exposes :meth:`project_viewports` mirroring the
    paper's auto-mode: given an original centred viewport it produces
    the two eye views by shifting along X by half the offset parameter
    ``W`` — used by the OO programming model's automatic extension of
    object-level SFR.
    """

    def __init__(self, cost: CostModel) -> None:
        self._cost = cost

    # -- geometry pricing -------------------------------------------------

    def geometry_work(self, draw: StereoDraw, mode: SMPMode) -> GeometryWork:
        """Vertex/triangle counts for ``draw`` under ``mode``.

        ``SEQUENTIAL`` mode on an ``Eye.BOTH`` draw prices *both* full
        passes (the caller chose not to split the draw); per-eye draws
        are unaffected by the mode.
        """
        mesh = draw.mesh
        views = draw.view_count
        survival = self._cost.cull_survival
        if views == 1:
            return GeometryWork(
                vertices=float(mesh.num_vertices),
                triangles_setup=float(mesh.num_triangles),
                triangles_raster=mesh.num_triangles * survival,
                views=1,
            )
        if mode is SMPMode.SEQUENTIAL:
            return GeometryWork(
                vertices=2.0 * mesh.num_vertices,
                triangles_setup=2.0 * mesh.num_triangles,
                triangles_raster=2.0 * mesh.num_triangles * survival,
                views=2,
            )
        # Simultaneous: shade once, duplicate projections.  The first
        # view pays full input assembly + setup; the duplicated view's
        # triangles arrive already transformed, so re-projection costs
        # half a setup pass plus the SMP engine overhead.  Both views
        # rasterise in full.
        setup = mesh.num_triangles * (1.5 + self._cost.smp_projection_overhead)
        return GeometryWork(
            vertices=float(mesh.num_vertices),
            triangles_setup=setup,
            triangles_raster=2.0 * mesh.num_triangles * survival,
            views=2,
        )

    # -- viewport projection ------------------------------------------------

    @staticmethod
    def project_viewports(
        original: Viewport, half_offset: float, eye_bounds_left: Viewport,
        eye_bounds_right: Viewport,
    ) -> Tuple[Viewport, Viewport]:
        """The paper's auto-mode stereo projection (Section 5.1).

        Shifts ``original`` by ``-half_offset`` for the left eye and
        ``+half_offset`` for the right, then clips each against its eye
        boundary ("we modify the triangle clipping to prevent the spill
        over into the opposite eye").  Degenerate clips collapse to a
        zero-width sliver at the boundary rather than disappearing, so
        the object stays schedulable.
        """
        left = original.shifted(-half_offset)
        right = original.shifted(+half_offset)
        left_clipped = left.clamped(eye_bounds_left)
        right_clipped = right.clamped(eye_bounds_right)
        if left_clipped is None:
            edge = min(max(left.x0, eye_bounds_left.x0), eye_bounds_left.x1)
            left_clipped = Viewport(edge, left.y0, edge, left.y1)
        if right_clipped is None:
            edge = min(max(right.x0, eye_bounds_right.x0), eye_bounds_right.x1)
            right_clipped = Viewport(edge, right.y0, edge, right.y1)
        return left_clipped, right_clipped
