"""Work units: the schedulable quanta of rendering work.

A :class:`WorkUnit` is what a framework hands to a GPM: either a whole
draw, a fraction of a draw (tile-SFR strip share, fine-grained steal
slice), or a merged batch.  It carries

- stage work *counts* (vertices, triangles, fragments, pixels) that the
  timing model prices in cycles, and
- memory *touches* (texture/vertex resources with unique and stream
  byte counts) that the NUMA layer resolves into local and remote
  traffic once the unit is bound to a GPM.

Framebuffer and depth traffic are kept as counts, not touches, because
where those bytes go depends on the framework's framebuffer layout
(interleaved, master-node, per-GPM private, or DHC-striped).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.memory.address import Touch
from repro.scene.geometry import Viewport


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of rendering work.

    All counts are totals over the unit's views.  ``fraction`` tracks
    how much of the original draw this unit represents (1.0 = whole),
    so splits preserve invariants checkable in tests.
    """

    label: str
    #: Views produced (1 = mono pass, 2 = SMP multi-view).
    views: int
    #: Vertex-shader invocations (SMP shares these across views).
    vertices: float
    #: Triangles through primitive setup (per-view duplicates included).
    triangles_setup: float
    #: Triangles surviving cull/clip and sent to the rasteriser.
    triangles_raster: float
    #: Rasterised fragments (both views).
    fragments: float
    #: Pixels written to the framebuffer after depth test.
    pixels_out: float
    #: Texture sample requests issued by the fragment stage.
    texel_requests: float
    #: Fragment shader cost multiplier.
    shader_complexity: float
    #: Texture memory touches (resource-bound).
    texture_touches: Tuple[Touch, ...]
    #: Vertex buffer touches (resource-bound); batches carry one per
    #: merged object so page placement stays per-object.
    vertex_touches: Tuple[Touch, ...]
    #: Depth-test request bytes (stream) and touched depth footprint.
    z_stream_bytes: float
    z_unique_bytes: float
    #: Colour bytes written by the ROPs.
    fb_write_bytes: float
    #: Command/state bytes the command processor ships to the GPM.
    command_bytes: float
    #: Screen rectangles this unit renders into (per view).
    viewports: Tuple[Viewport, ...]
    #: Fraction of the source draw this unit represents.
    fraction: float = 1.0
    #: Fixed per-unit scheduling overhead multiplier (draw overhead is
    #: charged once per unit; merged batches amortise it).
    draw_count: float = 1.0

    def __post_init__(self) -> None:
        if self.views not in (1, 2):
            raise ValueError("views must be 1 or 2")
        numeric = (
            self.vertices,
            self.triangles_setup,
            self.triangles_raster,
            self.fragments,
            self.pixels_out,
            self.texel_requests,
            self.z_stream_bytes,
            self.z_unique_bytes,
            self.fb_write_bytes,
            self.command_bytes,
        )
        if any(v < 0 for v in numeric):
            raise ValueError(f"negative work count in {self.label!r}")
        if self.shader_complexity <= 0:
            raise ValueError("shader_complexity must be positive")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    # -- splitting ---------------------------------------------------------

    def split(self, factor: float, label_suffix: str = "part") -> "WorkUnit":
        """A unit representing ``factor`` of this one.

        Geometry work does *not* scale below the unit level for screen
        splits — that is handled by the caller via
        :meth:`with_geometry_share` — but fine-grained stealing slices
        (the OO-VR straggler mechanism) scale everything uniformly,
        which is what this method does.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("split factor must be in (0, 1]")
        return replace(
            self,
            label=f"{self.label}/{label_suffix}",
            vertices=self.vertices * factor,
            triangles_setup=self.triangles_setup * factor,
            triangles_raster=self.triangles_raster * factor,
            fragments=self.fragments * factor,
            pixels_out=self.pixels_out * factor,
            texel_requests=self.texel_requests * factor,
            texture_touches=tuple(t.scaled(factor) for t in self.texture_touches),
            vertex_touches=tuple(t.scaled(factor) for t in self.vertex_touches),
            z_stream_bytes=self.z_stream_bytes * factor,
            z_unique_bytes=self.z_unique_bytes * factor,
            fb_write_bytes=self.fb_write_bytes * factor,
            command_bytes=self.command_bytes * factor,
            fraction=self.fraction * factor,
            draw_count=self.draw_count * factor,
        )

    def with_screen_share(
        self,
        pixel_share: float,
        geometry_share: float,
        unique_inflation: float,
        label_suffix: str,
        stream_inflation: float = 1.0,
    ) -> "WorkUnit":
        """A unit covering ``pixel_share`` of the screen work.

        Used by tile-SFR: the fragment-side work scales with the strip's
        pixel share, the geometry side with the fraction of triangles
        overlapping the strip (``geometry_share``), and per-texture
        *unique* footprints scale by ``pixel_share * unique_inflation``
        (capped at 1): neighbouring strips re-touch border texels and
        shared mip levels, so unique bytes do not divide cleanly —
        that redundancy is exactly why tile-SFR inflates traffic.
        """
        if not 0.0 < pixel_share <= 1.0:
            raise ValueError("pixel_share must be in (0, 1]")
        if not 0.0 < geometry_share <= 1.0:
            raise ValueError("geometry_share must be in (0, 1]")
        if unique_inflation < 1.0:
            raise ValueError("unique_inflation is at least 1")
        if stream_inflation < 1.0:
            raise ValueError("stream_inflation is at least 1")
        unique_share = min(1.0, pixel_share * unique_inflation)
        stream_share = min(1.0, pixel_share * stream_inflation)
        touches = []
        for touch in self.texture_touches:
            touches.append(
                Touch(
                    resource=touch.resource,
                    unique_bytes=touch.unique_bytes * unique_share,
                    stream_bytes=touch.stream_bytes * stream_share,
                    write_bytes=touch.write_bytes * pixel_share,
                )
            )
        return replace(
            self,
            label=f"{self.label}/{label_suffix}",
            vertices=self.vertices * geometry_share,
            triangles_setup=self.triangles_setup * geometry_share,
            triangles_raster=self.triangles_raster * geometry_share,
            fragments=self.fragments * pixel_share,
            pixels_out=self.pixels_out * pixel_share,
            texel_requests=self.texel_requests * pixel_share,
            texture_touches=tuple(touches),
            vertex_touches=tuple(
                t.scaled(geometry_share) for t in self.vertex_touches
            ),
            z_stream_bytes=self.z_stream_bytes * pixel_share,
            z_unique_bytes=self.z_unique_bytes * pixel_share,
            fb_write_bytes=self.fb_write_bytes * pixel_share,
            command_bytes=self.command_bytes,
            fraction=self.fraction * pixel_share,
            draw_count=self.draw_count,
        )

    # -- aggregate properties ----------------------------------------------

    @property
    def texture_unique_bytes(self) -> float:
        return sum(t.unique_bytes for t in self.texture_touches)

    @property
    def texture_stream_bytes(self) -> float:
        return sum(t.stream_bytes for t in self.texture_touches)


def merge_units(label: str, units: Tuple[WorkUnit, ...]) -> WorkUnit:
    """Concatenate several units into one batch-level unit.

    Used by the OO middleware after grouping objects into a batch: the
    batch is scheduled as one quantum, its draw overheads amortised by
    the command processor submitting them back to back.
    """
    if not units:
        raise ValueError("cannot merge zero units")
    views = max(u.views for u in units)
    touches: dict = {}
    for unit in units:
        for touch in unit.texture_touches:
            prev = touches.get(touch.resource.resource_id)
            if prev is None:
                touches[touch.resource.resource_id] = Touch(
                    resource=touch.resource,
                    unique_bytes=touch.unique_bytes,
                    stream_bytes=touch.stream_bytes,
                    write_bytes=touch.write_bytes,
                )
            else:
                # Shared texture within the batch: streams add, but the
                # unique footprint is shared (this is the TSL payoff —
                # the second object re-reads cached data).
                touches[touch.resource.resource_id] = Touch(
                    resource=touch.resource,
                    unique_bytes=max(prev.unique_bytes, touch.unique_bytes),
                    stream_bytes=prev.stream_bytes + touch.stream_bytes,
                    write_bytes=prev.write_bytes + touch.write_bytes,
                )
    vertex_touches: list = []
    for unit in units:
        vertex_touches.extend(unit.vertex_touches)
    viewports: list = []
    for unit in units:
        viewports.extend(unit.viewports)
    return WorkUnit(
        label=label,
        views=views,
        vertices=sum(u.vertices for u in units),
        triangles_setup=sum(u.triangles_setup for u in units),
        triangles_raster=sum(u.triangles_raster for u in units),
        fragments=sum(u.fragments for u in units),
        pixels_out=sum(u.pixels_out for u in units),
        texel_requests=sum(u.texel_requests for u in units),
        shader_complexity=(
            sum(u.shader_complexity * u.fragments for u in units)
            / max(1.0, sum(u.fragments for u in units))
        ),
        texture_touches=tuple(touches.values()),
        vertex_touches=tuple(vertex_touches),
        z_stream_bytes=sum(u.z_stream_bytes for u in units),
        z_unique_bytes=sum(u.z_unique_bytes for u in units),
        fb_write_bytes=sum(u.fb_write_bytes for u in units),
        command_bytes=sum(u.command_bytes for u in units),
        viewports=tuple(viewports),
        fraction=1.0,
        draw_count=sum(u.draw_count for u in units),
    )
