"""Stage timing: pricing a work unit in GPM cycles.

The timing model is a per-unit roofline over the pipeline stages of
Fig. 2(b): a deeply pipelined GPU overlaps the stages of one draw, so a
unit's *compute* time is the maximum over its stage times, plus the
fixed per-draw command/state overhead.  Memory time (local DRAM, remote
links) is priced separately by the GPM layer and combined with another
max — whichever resource saturates first bounds throughput.

Stage rates come from Table 2 via :class:`~repro.config.GPMConfig`:

==============  ===================================================
vertex shading  ``shader_cores`` cores x ``vertex_shader_cycles``
setup           ``num_pmes`` x ``triangles_per_cycle_per_pme``
raster          ``raster_fragments_per_cycle``
fragment        ``shader_cores`` x ``fragment_shader_cycles`` x
                complexity
texture         ``texture_units`` texels/cycle
ROP             ``num_rops`` x ``rop_pixels_per_cycle``
==============  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.config import CostModel, GPMConfig
from repro.pipeline.workunit import WorkUnit


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage cycle costs of one work unit on one GPM."""

    vertex_cycles: float
    setup_cycles: float
    raster_cycles: float
    fragment_cycles: float
    texture_cycles: float
    rop_cycles: float
    overhead_cycles: float

    @property
    def compute_cycles(self) -> float:
        """Pipelined compute time: slowest stage plus fixed overhead."""
        return (
            max(
                self.vertex_cycles,
                self.setup_cycles,
                self.raster_cycles,
                self.fragment_cycles,
                self.texture_cycles,
                self.rop_cycles,
            )
            + self.overhead_cycles
        )

    @property
    def serial_cycles(self) -> float:
        """Un-pipelined total; an upper bound used in sanity tests."""
        return (
            self.vertex_cycles
            + self.setup_cycles
            + self.raster_cycles
            + self.fragment_cycles
            + self.texture_cycles
            + self.rop_cycles
            + self.overhead_cycles
        )

    @property
    def bottleneck(self) -> str:
        """Name of the slowest stage."""
        stages = {
            "vertex": self.vertex_cycles,
            "setup": self.setup_cycles,
            "raster": self.raster_cycles,
            "fragment": self.fragment_cycles,
            "texture": self.texture_cycles,
            "rop": self.rop_cycles,
        }
        return max(stages, key=stages.get)


def price_work_unit(
    unit: WorkUnit, gpm: GPMConfig, cost: CostModel
) -> StageBreakdown:
    """Price ``unit`` on a GPM with configuration ``gpm``."""
    cores = gpm.shader_cores
    vertex_cycles = unit.vertices * cost.vertex_shader_cycles / cores
    setup_rate = gpm.num_pmes * cost.triangles_per_cycle_per_pme
    setup_cycles = unit.triangles_setup / setup_rate
    raster_cycles = unit.fragments / cost.raster_fragments_per_cycle
    fragment_cycles = (
        unit.fragments * cost.fragment_shader_cycles * unit.shader_complexity / cores
    )
    # TXUs pipeline the anisotropic taps of one sample: throughput is
    # one *sample* per TXU-cycle, while the taps hit the memory system.
    samples = unit.texel_requests / cost.anisotropic_texels_per_sample
    texture_cycles = samples / gpm.texture_units
    rop_cycles = unit.pixels_out / gpm.rop_throughput
    overhead_cycles = cost.draw_overhead_cycles * unit.draw_count
    return StageBreakdown(
        vertex_cycles=vertex_cycles,
        setup_cycles=setup_cycles,
        raster_cycles=raster_cycles,
        fragment_cycles=fragment_cycles,
        texture_cycles=texture_cycles,
        rop_cycles=rop_cycles,
        overhead_cycles=overhead_cycles,
    )


def price_work_units(
    units: Sequence[WorkUnit], gpm: GPMConfig, cost: CostModel
) -> Tuple[StageBreakdown, ...]:
    """Price many units at once with the Eq. 3 stage maths vectorized.

    Same numbers as mapping :func:`price_work_unit` over ``units`` —
    every stage expression is evaluated elementwise over the unit
    columns (exact float64 products/quotients, nothing reduced), so the
    breakdowns are interchangeable with the scalar ones.  Used where a
    whole batch is priced with no interleaved memory-system side
    effects (calibration, benches, straggler what-ifs).
    """
    if not units:
        return ()
    cores = gpm.shader_cores
    setup_rate = gpm.num_pmes * cost.triangles_per_cycle_per_pme
    vertices = np.array([unit.vertices for unit in units])
    triangles_setup = np.array([unit.triangles_setup for unit in units])
    fragments = np.array([unit.fragments for unit in units])
    complexity = np.array([unit.shader_complexity for unit in units])
    texels = np.array([unit.texel_requests for unit in units])
    pixels = np.array([unit.pixels_out for unit in units])
    draws = np.array([unit.draw_count for unit in units])

    vertex_cycles = vertices * cost.vertex_shader_cycles / cores
    setup_cycles = triangles_setup / setup_rate
    raster_cycles = fragments / cost.raster_fragments_per_cycle
    fragment_cycles = (
        fragments * cost.fragment_shader_cycles * complexity / cores
    )
    samples = texels / cost.anisotropic_texels_per_sample
    texture_cycles = samples / gpm.texture_units
    rop_cycles = pixels / gpm.rop_throughput
    overhead_cycles = cost.draw_overhead_cycles * draws
    return tuple(
        StageBreakdown(
            vertex_cycles=vertex_cycles[i],
            setup_cycles=setup_cycles[i],
            raster_cycles=raster_cycles[i],
            fragment_cycles=fragment_cycles[i],
            texture_cycles=texture_cycles[i],
            rop_cycles=rop_cycles[i],
            overhead_cycles=overhead_cycles[i],
        )
        for i in range(len(units))
    )
