"""Vectorized draw characterisation over :class:`ObjectBatch` columns.

This is the batched twin of :meth:`DrawCharacterizer.characterize`: one
numpy pass computes every per-draw counter of a frame — SMP geometry
work, fragment/texel demand, depth and colour traffic, and the
per-texture stream/unique touch bytes (in CSR layout mirroring the
batch's binding table).  :func:`work_units_from_counters` then
materialises the same :class:`~repro.pipeline.workunit.WorkUnit`
objects the scalar path builds, so everything downstream (binding,
pricing, merging, splitting) is untouched.

Exactness contract: every expression here is the scalar expression
evaluated elementwise, with the same association order — products stay
left-associated, ``min``/``max`` become ``np.minimum``/``np.maximum``,
and no float reduction is reordered.  int64 → float64 conversions are
exact for every count in range.  ``tests/test_soa_batches.py`` asserts
field-for-field equality (touches included) against the scalar path.

Purity contract: :func:`frame_counters` is a pure function of the
frame's :class:`ObjectBatch` plus hashable config slices (cost model,
SMP mode, expansion factor), and the :class:`FrameCounters` /
:class:`~repro.pipeline.workunit.WorkUnit` values it yields are
frozen.  That is what lets
:meth:`DrawCharacterizer.characterize_frame
<repro.pipeline.characterize.DrawCharacterizer.characterize_frame>`
memoise its result per frame object in the per-process reuse cache
(:mod:`repro.reuse`) — cells of a sweep that share a workload share
the characterisation outright, byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import CostModel
from repro.memory.address import Touch, texture_resource, vertex_resource
from repro.pipeline.fragment import MIN_TOUCH_BYTES
from repro.pipeline.smp import SMPMode
from repro.pipeline.workunit import WorkUnit
from repro.scene.batch import ObjectBatch
from repro.scene.objects import Eye

__all__ = [
    "FrameCounters",
    "frame_counters",
    "work_units_from_counters",
]

#: Eye codes used in :attr:`FrameCounters.eye_codes`.
EYE_LEFT, EYE_RIGHT, EYE_BOTH = 0, 1, 2

_EYE_FROM_CODE = {EYE_LEFT: Eye.LEFT, EYE_RIGHT: Eye.RIGHT, EYE_BOTH: Eye.BOTH}


@dataclass(frozen=True)
class FrameCounters:
    """Per-draw counters for one frame, as parallel arrays.

    Draw order matches the frame's draw expansion: ``"multiview"``
    aligns with :meth:`Frame.multiview_draws` (one draw per object),
    ``"stereo"`` with :meth:`Frame.stereo_draws` (left then right per
    object, absent eyes skipped).  Texture touches are CSR: draw ``d``
    owns rows ``touch_offsets[d]:touch_offsets[d+1]``.
    """

    expansion: str
    mode: SMPMode
    obj_index: np.ndarray  #: (D,) int64 — row into the ObjectBatch
    eye_codes: np.ndarray  #: (D,) int64 — EYE_LEFT/RIGHT/BOTH
    views: np.ndarray  #: (D,) int64
    vertices: np.ndarray  #: (D,) float64
    triangles_setup: np.ndarray
    triangles_raster: np.ndarray
    fragments: np.ndarray
    pixels_out: np.ndarray
    texel_requests: np.ndarray
    z_stream_bytes: np.ndarray
    z_unique_bytes: np.ndarray
    fb_write_bytes: np.ndarray
    vertex_stream_bytes: np.ndarray  #: max(buffer bytes, shaded bytes)
    touch_offsets: np.ndarray  #: (D+1,) int64 CSR row pointers
    touch_tex_ids: np.ndarray  #: (nnz,) int64
    touch_tex_sizes: np.ndarray  #: (nnz,) int64
    touch_unique_bytes: np.ndarray  #: (nnz,) float64
    touch_stream_bytes: np.ndarray  #: (nnz,) float64
    #: Draws whose scalar path returns no texture touches (no bindings,
    #: or zero fragment demand short-circuits the weighting loop).
    empty_touches: np.ndarray  #: (D,) bool

    def __len__(self) -> int:
        return len(self.obj_index)


def frame_counters(
    batch: ObjectBatch,
    cost: CostModel,
    mode: SMPMode = SMPMode.SIMULTANEOUS,
    expansion: str = "multiview",
) -> FrameCounters:
    """Compute every per-draw counter of ``batch`` in one numpy pass."""
    n = len(batch)
    if expansion == "multiview":
        obj_index = np.arange(n, dtype=np.int64)
        stereo = batch.is_stereo
        eye_codes = np.where(
            stereo, EYE_BOTH, np.where(batch.has_left, EYE_LEFT, EYE_RIGHT)
        ).astype(np.int64)
        views = np.where(stereo, 2, 1).astype(np.int64)
    elif expansion == "stereo":
        counts = batch.has_left.astype(np.int64) + batch.has_right.astype(
            np.int64
        )
        total = int(counts.sum())
        obj_index = np.repeat(np.arange(n, dtype=np.int64), counts)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(
            offsets[:-1], counts
        )
        is_left = (within == 0) & batch.has_left[obj_index]
        eye_codes = np.where(is_left, EYE_LEFT, EYE_RIGHT).astype(np.int64)
        views = np.ones(total, dtype=np.int64)
    else:
        raise ValueError(f"unknown draw expansion {expansion!r}")

    both = eye_codes == EYE_BOTH
    # Covered pixels, in the scalar accumulation order: left area then
    # right area, each scaled by coverage (absent eyes are exact +0.0).
    left_covered = batch.left_area * batch.coverage
    right_covered = batch.right_area * batch.coverage
    covered = np.where(
        both,
        (left_covered + right_covered)[obj_index],
        np.where(
            eye_codes == EYE_LEFT,
            left_covered[obj_index],
            right_covered[obj_index],
        ),
    )
    fragments = covered * batch.depth_complexity[obj_index]

    # Geometry / SMP stage (repro.pipeline.smp.geometry_work).
    num_vertices = batch.num_vertices[obj_index].astype(np.float64)
    num_triangles = batch.num_triangles[obj_index].astype(np.float64)
    survival = cost.cull_survival
    if mode is SMPMode.SEQUENTIAL:
        vertices = np.where(both, 2.0 * num_vertices, num_vertices)
        triangles_setup = np.where(both, 2.0 * num_triangles, num_triangles)
    else:
        setup_factor = 1.5 + cost.smp_projection_overhead
        vertices = num_vertices
        triangles_setup = np.where(
            both, num_triangles * setup_factor, num_triangles
        )
    triangles_raster = np.where(
        both, (2.0 * num_triangles) * survival, num_triangles * survival
    )

    multi_view = both & (mode is SMPMode.SIMULTANEOUS)
    view_reuse = np.where(multi_view, 2.0, 1.0)

    # Fragment-stage demand (repro.pipeline.fragment).
    texel_requests = (
        fragments * cost.samples_per_fragment
    ) * cost.anisotropic_texels_per_sample
    raw_bytes = texel_requests * cost.bytes_per_texel
    z_stream_bytes = fragments * cost.bytes_per_ztest
    z_unique_bytes = covered * cost.bytes_per_ztest
    fb_write_bytes = covered * cost.bytes_per_pixel_out
    vertex_buffer = batch.vertex_buffer_bytes[obj_index].astype(np.float64)
    vertex_stream_bytes = np.maximum(
        vertex_buffer, vertices * cost.bytes_per_vertex
    )

    # Per-texture touches over the CSR binding table.  Weights come
    # from the *raw* binding list (duplicates included) — the exact
    # total the scalar loop divides by.
    bind_counts = batch.tex_counts[obj_index]
    touch_offsets = np.zeros(len(obj_index) + 1, dtype=np.int64)
    np.cumsum(bind_counts, out=touch_offsets[1:])
    nnz = int(touch_offsets[-1])
    within_bind = np.arange(nnz, dtype=np.int64) - np.repeat(
        touch_offsets[:-1], bind_counts
    )
    source = np.repeat(batch.tex_offsets[obj_index], bind_counts) + within_bind
    touch_tex_ids = batch.tex_ids[source]
    touch_tex_sizes = batch.tex_sizes[source]
    row = np.repeat(np.arange(len(obj_index), dtype=np.int64), bind_counts)

    size_cumsum = np.zeros(nnz + 1, dtype=np.int64)
    np.cumsum(touch_tex_sizes, out=size_cumsum[1:])
    totals = (
        size_cumsum[touch_offsets[1:]] - size_cumsum[touch_offsets[:-1]]
    ).astype(np.float64)
    sizes_f = touch_tex_sizes.astype(np.float64)
    weight = sizes_f / totals[row]
    frag_rows = fragments[row]
    reuse_rows = view_reuse[row]
    touch_unique_bytes = np.minimum(
        sizes_f,
        np.maximum(
            MIN_TOUCH_BYTES,
            ((frag_rows * weight) * cost.bytes_per_texel) / reuse_rows,
        ),
    )
    touch_stream_bytes = np.maximum(
        touch_unique_bytes,
        ((raw_bytes[row] * weight) * cost.l1_texture_leak) / reuse_rows,
    )
    empty_touches = (bind_counts == 0) | (raw_bytes == 0.0)

    return FrameCounters(
        expansion=expansion,
        mode=mode,
        obj_index=obj_index,
        eye_codes=eye_codes,
        views=views,
        vertices=vertices,
        triangles_setup=triangles_setup,
        triangles_raster=triangles_raster,
        fragments=fragments,
        pixels_out=covered,
        texel_requests=texel_requests,
        z_stream_bytes=z_stream_bytes,
        z_unique_bytes=z_unique_bytes,
        fb_write_bytes=fb_write_bytes,
        vertex_stream_bytes=vertex_stream_bytes,
        touch_offsets=touch_offsets,
        touch_tex_ids=touch_tex_ids,
        touch_tex_sizes=touch_tex_sizes,
        touch_unique_bytes=touch_unique_bytes,
        touch_stream_bytes=touch_stream_bytes,
        empty_touches=empty_touches,
    )


def work_units_from_counters(
    batch: ObjectBatch, counters: FrameCounters, cost: CostModel
) -> Tuple[WorkUnit, ...]:
    """Materialise the scalar-identical :class:`WorkUnit` per draw."""
    objects = batch.objects
    obj_index = counters.obj_index.tolist()
    eye_codes = counters.eye_codes.tolist()
    views = counters.views.tolist()
    vertices = counters.vertices.tolist()
    triangles_setup = counters.triangles_setup.tolist()
    triangles_raster = counters.triangles_raster.tolist()
    fragments = counters.fragments.tolist()
    pixels_out = counters.pixels_out.tolist()
    texel_requests = counters.texel_requests.tolist()
    z_stream = counters.z_stream_bytes.tolist()
    z_unique = counters.z_unique_bytes.tolist()
    fb_write = counters.fb_write_bytes.tolist()
    vertex_stream = counters.vertex_stream_bytes.tolist()
    offsets = counters.touch_offsets.tolist()
    bind_ids = counters.touch_tex_ids.tolist()
    bind_sizes = counters.touch_tex_sizes.tolist()
    bind_unique = counters.touch_unique_bytes.tolist()
    bind_stream = counters.touch_stream_bytes.tolist()
    empty = counters.empty_touches.tolist()
    command_bytes = cost.command_bytes_per_draw

    units = []
    for d in range(len(obj_index)):
        obj = objects[obj_index[d]]
        code = eye_codes[d]
        if code == EYE_BOTH:
            viewports = (obj.viewport_left, obj.viewport_right)
        elif code == EYE_LEFT:
            viewports = (obj.viewport_left,)
        else:
            viewports = (obj.viewport_right,)
        if empty[d]:
            texture_touches: Tuple[Touch, ...] = ()
        else:
            texture_touches = tuple(
                Touch(
                    resource=texture_resource(bind_ids[k], bind_sizes[k]),
                    unique_bytes=bind_unique[k],
                    stream_bytes=bind_stream[k],
                )
                for k in range(offsets[d], offsets[d + 1])
            )
        buffer_bytes = obj.mesh.vertex_buffer_bytes
        vertex_touch = Touch(
            resource=vertex_resource(obj.object_id, max(1, buffer_bytes)),
            unique_bytes=float(buffer_bytes),
            stream_bytes=vertex_stream[d],
        )
        units.append(
            WorkUnit(
                label=f"{obj.name}:{_EYE_FROM_CODE[code].value}",
                views=views[d],
                vertices=vertices[d],
                triangles_setup=triangles_setup[d],
                triangles_raster=triangles_raster[d],
                fragments=fragments[d],
                pixels_out=pixels_out[d],
                texel_requests=texel_requests[d],
                shader_complexity=obj.shader_complexity,
                texture_touches=texture_touches,
                vertex_touches=(vertex_touch,),
                z_stream_bytes=z_stream[d],
                z_unique_bytes=z_unique[d],
                fb_write_bytes=fb_write[d],
                command_bytes=command_bytes,
                viewports=viewports,
            )
        )
    return tuple(units)
