"""3D math for the software rasterizer.

Column-vector convention: a point ``p`` transforms as ``M @ p`` with
``p`` homogeneous ``(x, y, z, 1)``.  Matrices are ``float64`` numpy
arrays of shape ``(4, 4)``; batches of points are ``(N, 4)`` and
transform as ``(M @ points.T).T``.

The projection uses OpenGL clip-space conventions (right-handed eye
space looking down ``-z``, NDC cube ``[-1, 1]^3``) because the paper's
workloads are OpenGL/Direct3D traces and its SMP description is written
in terms of an ``[-W, +W]`` screen axis.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "identity",
    "look_at",
    "normalize",
    "perspective",
    "rotate_x",
    "rotate_y",
    "rotate_z",
    "scale_matrix",
    "transform_points",
    "translate",
]


def identity() -> np.ndarray:
    """The 4x4 identity transform."""
    return np.eye(4, dtype=np.float64)


def normalize(v: np.ndarray) -> np.ndarray:
    """``v`` scaled to unit length (raises on the zero vector)."""
    v = np.asarray(v, dtype=np.float64)
    norm = float(np.linalg.norm(v))
    if norm == 0.0:
        raise ValueError("cannot normalize the zero vector")
    return v / norm


def translate(dx: float, dy: float, dz: float) -> np.ndarray:
    """Translation by ``(dx, dy, dz)``."""
    m = identity()
    m[:3, 3] = (dx, dy, dz)
    return m


def scale_matrix(sx: float, sy: float | None = None, sz: float | None = None) -> np.ndarray:
    """Axis-aligned scale; one argument means uniform scaling."""
    if sy is None:
        sy = sx
    if sz is None:
        sz = sx
    if sx == 0 or sy == 0 or sz == 0:
        raise ValueError("scale factors must be non-zero")
    m = identity()
    m[0, 0], m[1, 1], m[2, 2] = sx, sy, sz
    return m


def _rotation(axis_a: int, axis_b: int, radians: float) -> np.ndarray:
    m = identity()
    c, s = math.cos(radians), math.sin(radians)
    m[axis_a, axis_a] = c
    m[axis_a, axis_b] = -s
    m[axis_b, axis_a] = s
    m[axis_b, axis_b] = c
    return m


def rotate_x(radians: float) -> np.ndarray:
    """Rotation about the +x axis."""
    return _rotation(1, 2, radians)


def rotate_y(radians: float) -> np.ndarray:
    """Rotation about the +y axis."""
    return _rotation(2, 0, radians)


def rotate_z(radians: float) -> np.ndarray:
    """Rotation about the +z axis."""
    return _rotation(0, 1, radians)


def look_at(
    eye: Sequence[float],
    target: Sequence[float],
    up: Sequence[float] = (0.0, 1.0, 0.0),
) -> np.ndarray:
    """A right-handed view matrix placing the camera at ``eye``.

    The camera looks towards ``target``; eye space looks down ``-z``.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    forward = normalize(target - eye)
    right = normalize(np.cross(forward, np.asarray(up, dtype=np.float64)))
    true_up = np.cross(right, forward)
    m = identity()
    m[0, :3] = right
    m[1, :3] = true_up
    m[2, :3] = -forward
    m[:3, 3] = -(m[:3, :3] @ eye)
    return m


def perspective(
    fov_y_degrees: float,
    aspect: float,
    near: float,
    far: float,
) -> np.ndarray:
    """An OpenGL-style perspective projection.

    Maps the right-handed view frustum to the ``[-1, 1]^3`` NDC cube
    (after the perspective divide).  ``aspect`` is width over height.
    """
    if not 0.0 < fov_y_degrees < 180.0:
        raise ValueError("field of view must be in (0, 180) degrees")
    if aspect <= 0:
        raise ValueError("aspect ratio must be positive")
    if near <= 0 or far <= near:
        raise ValueError("need 0 < near < far")
    f = 1.0 / math.tan(math.radians(fov_y_degrees) / 2.0)
    m = np.zeros((4, 4), dtype=np.float64)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (far + near) / (near - far)
    m[2, 3] = 2.0 * far * near / (near - far)
    m[3, 2] = -1.0
    return m


def transform_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 ``matrix`` to ``(N, 3)`` or ``(N, 4)`` points.

    Returns homogeneous ``(N, 4)`` coordinates *without* dividing by
    ``w`` — the rasterizer needs ``w`` for perspective-correct
    interpolation and near-plane handling.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] not in (3, 4):
        raise ValueError("points must have shape (N, 3) or (N, 4)")
    if points.shape[1] == 3:
        points = np.hstack([points, np.ones((len(points), 1))])
    return (matrix @ points.T).T
