"""Mono and stereo cameras.

A :class:`StereoCamera` produces the two view matrices of an HMD: the
eyes sit ``ipd`` apart along the camera's right axis and share one
projection.  This is exactly the geometry the paper's SMP engine
exploits — "it duplicates the geometry process from left to right views
through changing the projection centers instead of executing the
geometry process twice" (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.render.math3d import look_at, normalize, perspective

__all__ = ["Camera", "StereoCamera"]


@dataclass(frozen=True)
class Camera:
    """A single-viewpoint perspective camera.

    Parameters
    ----------
    position / target / up:
        World-space placement (see :func:`repro.render.math3d.look_at`).
    fov_y_degrees:
        Vertical field of view.  VR HMDs are wide (Table 1 quotes 120°+
        horizontally); the examples default to a conservative 90°.
    aspect:
        Viewport width over height.
    near / far:
        Clip plane distances.
    """

    position: Tuple[float, float, float]
    target: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    up: Tuple[float, float, float] = (0.0, 1.0, 0.0)
    fov_y_degrees: float = 90.0
    aspect: float = 1.0
    near: float = 0.1
    far: float = 100.0

    def view_matrix(self) -> np.ndarray:
        return look_at(self.position, self.target, self.up)

    def projection_matrix(self) -> np.ndarray:
        return perspective(self.fov_y_degrees, self.aspect, self.near, self.far)

    def view_projection(self) -> np.ndarray:
        """The combined clip-from-world transform."""
        return self.projection_matrix() @ self.view_matrix()


@dataclass(frozen=True)
class StereoCamera:
    """A stereo rig: one head pose, two eye viewpoints.

    The eye separation (interpupillary distance, ``ipd``) defaults to
    64 mm expressed in scene units (the examples use metres).  Both eyes
    look along the head's forward axis — parallel view directions, as in
    real HMD projection — and share a single projection matrix, which is
    the property that makes SMP a pure re-projection.
    """

    head: Camera
    ipd: float = 0.064

    def __post_init__(self) -> None:
        if self.ipd <= 0:
            raise ValueError("interpupillary distance must be positive")

    def _eye_offset(self) -> np.ndarray:
        """The world-space right axis of the head, scaled to ipd/2."""
        position = np.asarray(self.head.position, dtype=np.float64)
        target = np.asarray(self.head.target, dtype=np.float64)
        forward = normalize(target - position)
        right = normalize(
            np.cross(forward, np.asarray(self.head.up, dtype=np.float64))
        )
        return right * (self.ipd / 2.0)

    def eye_camera(self, eye: str) -> Camera:
        """The per-eye camera (``"left"`` or ``"right"``)."""
        if eye not in ("left", "right"):
            raise ValueError("eye must be 'left' or 'right'")
        sign = -1.0 if eye == "left" else 1.0
        offset = self._eye_offset() * sign
        position = tuple(np.asarray(self.head.position) + offset)
        target = tuple(np.asarray(self.head.target) + offset)
        return Camera(
            position=position,
            target=target,
            up=self.head.up,
            fov_y_degrees=self.head.fov_y_degrees,
            aspect=self.head.aspect,
            near=self.head.near,
            far=self.head.far,
        )

    def view_projections(self) -> Tuple[np.ndarray, np.ndarray]:
        """(left, right) clip-from-world matrices."""
        return (
            self.eye_camera("left").view_projection(),
            self.eye_camera("right").view_projection(),
        )

    def reprojection_offset_ndc(self) -> float:
        """The SMP approximation: the NDC x-shift between the two eyes.

        For scene points far from the camera the two eye projections
        differ (to first order) by a constant shift along x.  The SMP
        engine in the paper's Fig. 5 renders the left view and shifts
        the viewport by W/2; this returns the equivalent NDC offset for
        a point at the head's target distance, used by the fast
        reprojection path of :class:`repro.render.stereo.StereoRenderer`.
        """
        position = np.asarray(self.head.position, dtype=np.float64)
        target = np.asarray(self.head.target, dtype=np.float64)
        distance = float(np.linalg.norm(target - position))
        if distance == 0:
            raise ValueError("head target coincides with head position")
        # Screen-space parallax of a point at `distance`, in NDC units.
        projection = self.head.projection_matrix()
        focal_x = float(projection[0, 0])
        return focal_x * self.ipd / distance
