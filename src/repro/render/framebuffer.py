"""Colour + depth render targets and PPM image output.

A :class:`FrameBuffer` is what the rasterizer draws into: an RGB colour
plane (uint8) and a float depth plane using the OpenGL convention that
*smaller* depth is nearer after the NDC mapping (cleared to ``+inf``).
PPM (P6) output keeps the package dependency-free while still producing
images any viewer opens — the Fig. 5 reproduction writes these.
"""

from __future__ import annotations

import pathlib
import struct
import zlib
from typing import Tuple, Union

import numpy as np

__all__ = ["FrameBuffer", "side_by_side"]


class FrameBuffer:
    """A ``width x height`` RGB + depth render target.

    Pixel ``(x, y)`` uses screen convention: ``x`` grows right,
    ``y`` grows *down* (row 0 is the top of the image), matching the
    raster coordinates the viewport transform emits.
    """

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.color = np.zeros((height, width, 3), dtype=np.uint8)
        self.depth = np.full((height, width), np.inf, dtype=np.float64)
        #: Pixels written since the last clear (colour writes, not tests).
        self.pixels_written = 0

    def clear(
        self, color: Tuple[int, int, int] = (0, 0, 0), depth: float = np.inf
    ) -> None:
        """Reset both planes and the write counter."""
        self.color[:, :] = np.asarray(color, dtype=np.uint8)
        self.depth[:, :] = depth
        self.pixels_written = 0

    @property
    def resolution(self) -> Tuple[int, int]:
        return (self.width, self.height)

    def covered_mask(self) -> np.ndarray:
        """Boolean mask of pixels whose depth has been written."""
        return np.isfinite(self.depth)

    def covered_pixels(self) -> int:
        """Number of pixels any draw has landed on since the clear."""
        return int(self.covered_mask().sum())

    def write_ppm(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the colour plane as a binary PPM (P6) image."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(self.color.tobytes())
        return path

    def write_png(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the colour plane as an RGB PNG (stdlib zlib only)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)

        def chunk(tag: bytes, payload: bytes) -> bytes:
            crc = zlib.crc32(tag + payload) & 0xFFFFFFFF
            return struct.pack(">I", len(payload)) + tag + payload + struct.pack(">I", crc)

        header = struct.pack(">IIBBBBB", self.width, self.height, 8, 2, 0, 0, 0)
        # Each scanline is prefixed with filter type 0 (None).
        raw = b"".join(
            b"\x00" + self.color[row].tobytes() for row in range(self.height)
        )
        payload = (
            b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", header)
            + chunk(b"IDAT", zlib.compress(raw, 6))
            + chunk(b"IEND", b"")
        )
        path.write_bytes(payload)
        return path

    def write_depth_pgm(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the depth plane as a grayscale PGM (P5) image.

        Finite depths are normalised to [0, 254] (near = bright);
        uncovered pixels are 255 (white), making coverage easy to see.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        finite = np.isfinite(self.depth)
        img = np.full((self.height, self.width), 255, dtype=np.uint8)
        if finite.any():
            values = self.depth[finite]
            lo, hi = float(values.min()), float(values.max())
            span = (hi - lo) or 1.0
            img[finite] = (254 * (1.0 - (self.depth[finite] - lo) / span)).astype(
                np.uint8
            )
        header = f"P5\n{self.width} {self.height}\n255\n".encode("ascii")
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(img.tobytes())
        return path


def side_by_side(left: FrameBuffer, right: FrameBuffer) -> FrameBuffer:
    """The HMD view: left and right eye images packed side by side.

    This is the stereo framebuffer layout of the paper's Fig. 5 —
    the display frame spans ``[-W, +W]`` with each eye owning half.
    """
    if left.resolution != right.resolution:
        raise ValueError("stereo pair must share one resolution")
    packed = FrameBuffer(left.width * 2, left.height)
    packed.color[:, : left.width] = left.color
    packed.color[:, left.width :] = right.color
    packed.depth[:, : left.width] = left.depth
    packed.depth[:, left.width :] = right.depth
    packed.pixels_written = left.pixels_written + right.pixels_written
    return packed
