"""Stereo frame rendering: sequential stereo vs. SMP (the Fig. 5 study).

:class:`StereoRenderer` renders a list of :class:`SceneObject3D` props
into a side-by-side stereo framebuffer under three modes:

- ``SEQUENTIAL`` — the pre-SMP pipeline: every object's geometry is
  transformed twice, once per eye (two full passes);
- ``SMP`` — simultaneous multi-projection: vertex shading (the
  model-space work) happens once per object, and only the per-eye
  *projection* is applied twice, exactly the duplication the paper's
  SMP engine performs inside the PolyMorph Engine;
- ``REPROJECTED`` — the aggressive approximation described around
  Fig. 5: render the left eye, then shift the viewport by the stereo
  parallax to synthesise the right eye, with clipping preventing spill
  into the opposite eye.  Cheap but geometrically wrong for near
  objects — the validation report quantifies the error.

Per-frame :class:`StereoFrameStats` expose the counter the paper uses
to validate its simulator changes: SMP halves ``vertices_transformed``
while leaving fragment counts untouched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.render.camera import StereoCamera
from repro.render.framebuffer import FrameBuffer, side_by_side
from repro.render.mesh3d import TriangleMesh
from repro.render.raster import DrawStats, FragmentShader, Rasterizer, checker_shader

__all__ = [
    "SceneObject3D",
    "StereoFrameStats",
    "StereoRenderMode",
    "StereoRenderer",
]


class StereoRenderMode(enum.Enum):
    """How the right eye's image is produced."""

    SEQUENTIAL = "sequential"
    SMP = "smp"
    REPROJECTED = "reprojected"


@dataclass(frozen=True)
class SceneObject3D:
    """A renderable prop: mesh + model transform + shader.

    ``name`` ties the prop to the statistical scene's object names so
    :mod:`repro.render.validate` can pair them up.
    """

    name: str
    mesh: TriangleMesh
    model_matrix: np.ndarray
    shader: Optional[FragmentShader] = None
    texture_name: str = "default"

    def shader_or_default(self) -> FragmentShader:
        return self.shader if self.shader is not None else checker_shader()


@dataclass
class StereoFrameStats:
    """Whole-frame counters, per eye and per object."""

    mode: StereoRenderMode
    per_object: Dict[str, DrawStats] = field(default_factory=dict)
    left: DrawStats = field(default_factory=DrawStats)
    right: DrawStats = field(default_factory=DrawStats)

    @property
    def total(self) -> DrawStats:
        return self.left.merged_with(self.right)

    @property
    def geometry_passes(self) -> int:
        """Vertex-shading passes over the scene (2 sequential, 1 SMP)."""
        return self.total.vertices_transformed

    def summary(self) -> str:
        """A short human-readable digest for examples and benches."""
        total = self.total
        return (
            f"mode={self.mode.value}: "
            f"tv={total.vertices_transformed} "
            f"tri={total.triangles_rasterised}/{total.triangles_in} "
            f"frag={total.fragments_shaded} "
            f"pix={total.pixels_written} "
            f"overdraw={total.overdraw:.2f}"
        )


class StereoRenderer:
    """Renders stereo frames from 3D props.

    Parameters
    ----------
    camera:
        The stereo rig.
    eye_width / eye_height:
        Per-eye resolution; the packed HMD image is twice as wide.
    """

    def __init__(
        self, camera: StereoCamera, eye_width: int, eye_height: int
    ) -> None:
        if eye_width <= 0 or eye_height <= 0:
            raise ValueError("eye resolution must be positive")
        self.camera = camera
        self.eye_width = eye_width
        self.eye_height = eye_height

    # -- internal helpers -----------------------------------------------------

    def _render_eye(
        self,
        objects: Sequence[SceneObject3D],
        view_projection: np.ndarray,
        stats_into: Dict[str, DrawStats],
    ) -> Tuple[FrameBuffer, DrawStats]:
        target = FrameBuffer(self.eye_width, self.eye_height)
        raster = Rasterizer(target)
        eye_total = DrawStats()
        for obj in objects:
            mvp = view_projection @ obj.model_matrix
            stats = raster.draw_mesh(obj.mesh, mvp, obj.shader_or_default())
            eye_total = eye_total.merged_with(stats)
            merged = stats_into.get(obj.name, DrawStats()).merged_with(stats)
            stats_into[obj.name] = merged
        return target, eye_total

    def _reproject(
        self, left: FrameBuffer
    ) -> Tuple[FrameBuffer, DrawStats]:
        """Synthesise the right eye by shifting the left image.

        The shift is the NDC parallax at the head's focus distance,
        converted to pixels.  Pixels shifted past the eye boundary are
        clipped (the paper "modif[ies] the triangle clipping to prevent
        the spill over into the opposite eye"); the revealed band on the
        other side stays background.
        """
        offset_ndc = self.camera.reprojection_offset_ndc()
        shift_px = int(round(offset_ndc * 0.5 * self.eye_width))
        right = FrameBuffer(self.eye_width, self.eye_height)
        stats = DrawStats()
        if shift_px >= self.eye_width:
            return right, stats
        if shift_px <= 0:
            right.color[:, :] = left.color
            right.depth[:, :] = left.depth
        else:
            right.color[:, : self.eye_width - shift_px] = left.color[:, shift_px:]
            right.depth[:, : self.eye_width - shift_px] = left.depth[:, shift_px:]
        # Reprojection shades no fragments; the copy is ROP work only.
        stats.pixels_written = int(np.isfinite(right.depth).sum())
        right.pixels_written = stats.pixels_written
        return right, stats

    # -- public API -------------------------------------------------------------

    def render(
        self,
        objects: Sequence[SceneObject3D],
        mode: StereoRenderMode = StereoRenderMode.SMP,
    ) -> Tuple[FrameBuffer, StereoFrameStats]:
        """Render one stereo frame; returns (packed framebuffer, stats).

        ``SEQUENTIAL`` and ``SMP`` produce *pixel-identical* images —
        SMP is an execution optimisation, not an approximation — but
        their geometry counters differ: SMP transforms each vertex once
        and re-projects, sequential transforms everything twice.
        ``REPROJECTED`` trades correctness for cost and differs near
        the eye boundary and for close objects.
        """
        if not objects:
            raise ValueError("nothing to render")
        stats = StereoFrameStats(mode=mode)
        left_vp, right_vp = self.camera.view_projections()

        left_fb, stats.left = self._render_eye(objects, left_vp, stats.per_object)

        if mode is StereoRenderMode.REPROJECTED:
            right_fb, stats.right = self._reproject(left_fb)
        else:
            right_fb, stats.right = self._render_eye(
                objects, right_vp, stats.per_object
            )
            if mode is StereoRenderMode.SMP:
                # SMP runs vertex shading once: the right eye re-uses the
                # transformed geometry stream and only re-projects it.
                # Model the saving by removing the duplicated transforms
                # from the counters (the image is untouched).
                stats.right.vertices_transformed = 0
        return side_by_side(left_fb, right_fb), stats

    def render_eye_buffers(
        self,
        objects: Sequence[SceneObject3D],
        mode: StereoRenderMode = StereoRenderMode.SMP,
    ) -> Tuple[FrameBuffer, FrameBuffer, StereoFrameStats]:
        """Like :meth:`render` but returns the two eyes separately."""
        packed, stats = self.render(objects, mode)
        left = FrameBuffer(self.eye_width, self.eye_height)
        right = FrameBuffer(self.eye_width, self.eye_height)
        left.color[:, :] = packed.color[:, : self.eye_width]
        left.depth[:, :] = packed.depth[:, : self.eye_width]
        right.color[:, :] = packed.color[:, self.eye_width :]
        right.depth[:, :] = packed.depth[:, self.eye_width :]
        return left, right, stats
