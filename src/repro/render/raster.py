"""The triangle rasterizer.

:class:`Rasterizer` walks each triangle of a mesh through the classic
pipeline the simulator prices statistically: clip-space transform,
near-plane rejection, back-face culling, viewport transform, barycentric
coverage with a z-buffer, and a small procedural-texture fragment stage.
Per-draw :class:`DrawStats` report the same counters the paper's
SMP-engine validation compares (triangle number, fragment number), so
the statistical and the executed pipeline can be cross-checked.

The inner loop is vectorised per triangle over its bounding box; this is
a software rasterizer for *validation and figures*, not a performance
renderer — a few hundred thousand fragments per frame render in well
under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Optional, Tuple

import numpy as np

from repro.render.framebuffer import FrameBuffer
from repro.render.math3d import transform_points
from repro.render.mesh3d import TriangleMesh

__all__ = ["DrawStats", "FragmentShader", "Rasterizer", "checker_shader"]

#: A fragment shader: (u, v, depth_ndc) arrays -> (N, 3) uint8 colours.
FragmentShader = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class DrawStats:
    """Counters for one draw call (one mesh through the pipeline).

    These mirror the quantities the paper's Eq. 3 predictor consumes:
    ``triangles_in`` (known before rendering), ``vertices_transformed``
    (#tv) and ``fragments_shaded``/``pixels_written`` (#pixel).
    """

    triangles_in: int = 0
    triangles_culled: int = 0
    triangles_clipped: int = 0
    triangles_rasterised: int = 0
    vertices_transformed: int = 0
    fragments_shaded: int = 0
    pixels_written: int = 0

    def merged_with(self, other: "DrawStats") -> "DrawStats":
        """Element-wise sum (for whole-frame roll-ups).

        Derived from the dataclass fields so a newly added counter can
        never silently drop out of the roll-up.
        """
        return DrawStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def overdraw(self) -> float:
        """Fragments shaded per pixel finally written (>= 1 when drawing)."""
        if self.pixels_written == 0:
            return 0.0
        return self.fragments_shaded / self.pixels_written


def checker_shader(
    color_a: Tuple[int, int, int] = (200, 200, 200),
    color_b: Tuple[int, int, int] = (60, 60, 60),
    tiles: float = 8.0,
) -> FragmentShader:
    """A UV checkerboard — the stand-in for real texture sampling."""

    a = np.asarray(color_a, dtype=np.float64)
    b = np.asarray(color_b, dtype=np.float64)

    def shade(u: np.ndarray, v: np.ndarray, depth: np.ndarray) -> np.ndarray:
        checker = (np.floor(u * tiles) + np.floor(v * tiles)) % 2.0
        # Cheap depth-based attenuation so geometry reads in the image.
        fade = np.clip(1.0 - 0.25 * np.clip(depth, 0.0, 1.0), 0.0, 1.0)
        rgb = np.where(checker[:, None] > 0.5, a[None, :], b[None, :])
        return np.clip(rgb * fade[:, None], 0, 255).astype(np.uint8)

    return shade


def _solid_shader(color: Tuple[int, int, int]) -> FragmentShader:
    rgb = np.asarray(color, dtype=np.uint8)

    def shade(u: np.ndarray, v: np.ndarray, depth: np.ndarray) -> np.ndarray:
        return np.broadcast_to(rgb, (len(u), 3)).copy()

    return shade


class Rasterizer:
    """Draws triangle meshes into a :class:`FrameBuffer`.

    Parameters
    ----------
    target:
        The framebuffer to draw into.
    scissor:
        Optional pixel rectangle ``(x0, y0, x1, y1)`` limiting coverage.
        The stereo renderer uses this to "prevent the spill over into
        the opposite eye" exactly as the paper modifies triangle
        clipping for its SMP engine.
    """

    def __init__(
        self,
        target: FrameBuffer,
        scissor: Optional[Tuple[int, int, int, int]] = None,
    ) -> None:
        self.target = target
        if scissor is None:
            scissor = (0, 0, target.width, target.height)
        x0, y0, x1, y1 = scissor
        x0 = max(0, min(x0, target.width))
        x1 = max(0, min(x1, target.width))
        y0 = max(0, min(y0, target.height))
        y1 = max(0, min(y1, target.height))
        if x1 <= x0 or y1 <= y0:
            raise ValueError("empty scissor rectangle")
        self.scissor = (x0, y0, x1, y1)

    # -- pipeline front end -------------------------------------------------

    def _to_screen(
        self, clip: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Clip-space -> (screen xy + depth, w) with the viewport transform."""
        w = clip[:, 3]
        safe_w = np.where(w == 0.0, 1e-12, w)
        ndc = clip[:, :3] / safe_w[:, None]
        screen = np.empty_like(ndc)
        screen[:, 0] = (ndc[:, 0] + 1.0) * 0.5 * self.target.width
        # NDC +y is up; raster y grows down.
        screen[:, 1] = (1.0 - ndc[:, 1]) * 0.5 * self.target.height
        screen[:, 2] = ndc[:, 2]
        return screen, w

    def draw_mesh(
        self,
        mesh: TriangleMesh,
        mvp: np.ndarray,
        shader: Optional[FragmentShader] = None,
        cull_backfaces: bool = True,
    ) -> DrawStats:
        """Rasterise ``mesh`` under the ``mvp`` transform.

        Triangles crossing the near plane are rejected rather than
        clipped (they count as ``triangles_clipped``); scene layouts in
        the examples keep geometry comfortably inside the frustum, and
        the statistics only need the rejection to be *counted*.
        """
        if shader is None:
            shader = checker_shader()
        stats = DrawStats(triangles_in=mesh.num_triangles)
        if mesh.num_triangles == 0:
            return stats
        clip = transform_points(mvp, mesh.positions)
        stats.vertices_transformed = mesh.num_vertices
        screen, w = self._to_screen(clip)

        # Batched front end: near-plane rejection, degenerate and
        # back-face culling run over every face at once; only the
        # survivors reach the per-triangle coverage loop, in original
        # face order so the depth-test outcome (and hence every written
        # pixel) matches the per-triangle reference path exactly.
        batch = mesh.batch
        tri, tri_w, near_reject, area = batch.front_end(screen, w)
        stats.triangles_clipped = int(near_reject.sum())
        if cull_backfaces:
            backface = area >= 0.0
        else:
            backface = area == 0.0
        # Batched scissor/bbox rejection: the same integral bounds the
        # coverage step computes, evaluated in float (floor/ceil values
        # are exactly representable), so the emptiness test matches the
        # per-triangle ``min_x >= max_x`` check bit for bit.
        sx0, sy0, sx1, sy1 = self.scissor
        xs = tri[:, :, 0]
        ys = tri[:, :, 1]
        offscreen = (
            np.maximum(sx0, np.floor(xs.min(axis=1)))
            >= np.minimum(sx1, np.ceil(xs.max(axis=1)) + 1.0)
        ) | (
            np.maximum(sy0, np.floor(ys.min(axis=1)))
            >= np.minimum(sy1, np.ceil(ys.max(axis=1)) + 1.0)
        )
        culled = ~near_reject & (backface | offscreen)
        stats.triangles_culled = int(culled.sum())
        face_uvs = batch.face_uvs
        for f in np.nonzero(~(near_reject | culled))[0]:
            stats_drawn = self._raster_coverage(
                tri[f], face_uvs[f], tri_w[f], area[f], shader
            )
            if stats_drawn is None:
                stats.triangles_culled += 1
                continue
            shaded, written = stats_drawn
            stats.triangles_rasterised += 1
            stats.fragments_shaded += shaded
            stats.pixels_written += written
        self.target.pixels_written += stats.pixels_written
        return stats

    def draw_mesh_reference(
        self,
        mesh: TriangleMesh,
        mvp: np.ndarray,
        shader: Optional[FragmentShader] = None,
        cull_backfaces: bool = True,
    ) -> DrawStats:
        """The retained per-triangle reference path.

        Walks faces one at a time exactly as the pre-SoA pipeline did.
        Kept as the oracle for the SoA == AoS property tests — it must
        produce the same :class:`DrawStats` and framebuffer contents as
        :meth:`draw_mesh` on any input.
        """
        if shader is None:
            shader = checker_shader()
        stats = DrawStats(triangles_in=mesh.num_triangles)
        if mesh.num_triangles == 0:
            return stats
        clip = transform_points(mvp, mesh.positions)
        stats.vertices_transformed = mesh.num_vertices
        screen, w = self._to_screen(clip)

        for face in mesh.faces:
            tri_w = w[face]
            if np.any(tri_w <= 1e-9):
                stats.triangles_clipped += 1
                continue
            tri = screen[face]
            uv = mesh.uvs[face]
            stats_drawn = self._raster_triangle(
                tri, uv, tri_w, shader, cull_backfaces
            )
            if stats_drawn is None:
                stats.triangles_culled += 1
                continue
            shaded, written = stats_drawn
            stats.triangles_rasterised += 1
            stats.fragments_shaded += shaded
            stats.pixels_written += written
        self.target.pixels_written += stats.pixels_written
        return stats

    # -- per-triangle raster loop ---------------------------------------------

    def _raster_triangle(
        self,
        tri: np.ndarray,
        uv: np.ndarray,
        tri_w: np.ndarray,
        shader: FragmentShader,
        cull_backfaces: bool,
    ) -> Optional[Tuple[int, int]]:
        """Rasterise one screen-space triangle.

        Returns ``(fragments_shaded, pixels_written)`` or ``None`` when
        the triangle is back-facing / degenerate / fully outside.
        """
        (x0, y0), (x1, y1), (x2, y2) = tri[:, 0:2]
        # Signed twice-area; raster y grows down so CCW-in-NDC becomes
        # negative here — front faces have area < 0.
        area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
        if area == 0.0:
            return None
        if cull_backfaces and area > 0.0:
            return None
        return self._raster_coverage(tri, uv, tri_w, area, shader)

    def _raster_coverage(
        self,
        tri: np.ndarray,
        uv: np.ndarray,
        tri_w: np.ndarray,
        area: float,
        shader: FragmentShader,
    ) -> Optional[Tuple[int, int]]:
        """Coverage, interpolation and writes for one accepted triangle.

        ``area`` is the precomputed signed twice-area (non-zero); the
        caller has already handled near-plane rejection and culling.
        """
        (x0, y0), (x1, y1), (x2, y2) = tri[:, 0:2]
        sx0, sy0, sx1, sy1 = self.scissor
        min_x = max(sx0, int(np.floor(min(x0, x1, x2))))
        max_x = min(sx1, int(np.ceil(max(x0, x1, x2))) + 1)
        min_y = max(sy0, int(np.floor(min(y0, y1, y2))))
        max_y = min(sy1, int(np.ceil(max(y0, y1, y2))) + 1)
        if min_x >= max_x or min_y >= max_y:
            return None

        # Open row/column grids: broadcasting materialises the same
        # (H, W) edge-function values meshgrid-based code would, minus
        # the full coordinate copies.
        px = np.arange(min_x, max_x, dtype=np.float64)[None, :] + 0.5
        py = np.arange(min_y, max_y, dtype=np.float64)[:, None] + 0.5

        w0 = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
        w1 = (x0 - x2) * (py - y2) - (y0 - y2) * (px - x2)
        w2 = (x1 - x0) * (py - y0) - (y1 - y0) * (px - x0)
        if area < 0:
            inside = (w0 <= 0) & (w1 <= 0) & (w2 <= 0)
        else:
            inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not inside.any():
            return None

        b0 = w0[inside] / area
        b1 = w1[inside] / area
        b2 = w2[inside] / area

        # Perspective-correct interpolation via 1/w weights.
        inv_w = 1.0 / tri_w
        persp = b0 * inv_w[0] + b1 * inv_w[1] + b2 * inv_w[2]
        depth = b0 * tri[0, 2] + b1 * tri[1, 2] + b2 * tri[2, 2]
        u = (
            b0 * uv[0, 0] * inv_w[0]
            + b1 * uv[1, 0] * inv_w[1]
            + b2 * uv[2, 0] * inv_w[2]
        ) / persp
        v = (
            b0 * uv[0, 1] * inv_w[0]
            + b1 * uv[1, 1] * inv_w[1]
            + b2 * uv[2, 1] * inv_w[2]
        ) / persp

        rows, cols = np.nonzero(inside)
        rows = rows + min_y
        cols = cols + min_x

        fragments = len(rows)
        current = self.target.depth[rows, cols]
        passes = depth < current
        written = int(passes.sum())
        if written:
            colours = shader(u[passes], v[passes], depth[passes])
            self.target.depth[rows[passes], cols[passes]] = depth[passes]
            self.target.color[rows[passes], cols[passes]] = colours
        return fragments, written
