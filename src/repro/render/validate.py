"""Cross-validation between the executed and the statistical pipeline.

The simulator prices draws from *assumed* statistics (covered pixels,
overdraw, triangle counts).  This module renders real geometry with
:mod:`repro.render` and **measures** those statistics, then builds the
equivalent statistical :class:`~repro.scene.objects.RenderObject` so the
two pipelines describe the same frame.  The paper does the analogous
check when it validates its ATTILA SMP engine "by comparing the triangle
number, fragment number and performance improvement" against real GPUs
(Section 3).

:func:`validate_scene` reports, per object: measured covered pixels,
measured overdraw, the screen-space bounding viewport per eye, and the
relative error between the statistical model's fragment estimate and the
rasterizer's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.render.camera import StereoCamera
from repro.render.framebuffer import FrameBuffer
from repro.render.raster import DrawStats, Rasterizer
from repro.render.stereo import SceneObject3D
from repro.scene.geometry import Viewport
from repro.scene.objects import Eye, RenderObject
from repro.scene.texture import Texture

__all__ = ["ObjectValidation", "ValidationReport", "validate_scene"]


@dataclass(frozen=True)
class ObjectValidation:
    """Measured vs. modelled statistics for one object."""

    name: str
    viewport_left: Optional[Viewport]
    viewport_right: Optional[Viewport]
    measured_fragments: int
    measured_pixels: int
    measured_overdraw: float
    measured_coverage: float
    modelled_fragments: float

    @property
    def fragment_error(self) -> float:
        """Relative error of the statistical fragment estimate."""
        if self.measured_fragments == 0:
            return 0.0 if self.modelled_fragments == 0 else float("inf")
        return (
            abs(self.modelled_fragments - self.measured_fragments)
            / self.measured_fragments
        )


@dataclass(frozen=True)
class ValidationReport:
    """The whole-scene validation result."""

    objects: Tuple[ObjectValidation, ...]
    render_objects: Tuple[RenderObject, ...]

    @property
    def mean_fragment_error(self) -> float:
        errors = [o.fragment_error for o in self.objects if np.isfinite(o.fragment_error)]
        return float(np.mean(errors)) if errors else 0.0

    @property
    def max_fragment_error(self) -> float:
        errors = [o.fragment_error for o in self.objects if np.isfinite(o.fragment_error)]
        return float(np.max(errors)) if errors else 0.0

    def table(self) -> str:
        """A text table for the examples and benches."""
        lines = [
            f"{'object':<14}{'pixels':>9}{'frags':>9}{'overdraw':>9}"
            f"{'coverage':>9}{'model':>10}{'err%':>7}"
        ]
        for obj in self.objects:
            lines.append(
                f"{obj.name:<14}{obj.measured_pixels:>9}"
                f"{obj.measured_fragments:>9}{obj.measured_overdraw:>9.2f}"
                f"{obj.measured_coverage:>9.2f}{obj.modelled_fragments:>10.0f}"
                f"{100 * obj.fragment_error:>6.1f}%"
            )
        lines.append(
            f"mean fragment error {100 * self.mean_fragment_error:.1f}%, "
            f"max {100 * self.max_fragment_error:.1f}%"
        )
        return "\n".join(lines)


def _measure_eye(
    obj: SceneObject3D,
    view_projection: np.ndarray,
    width: int,
    height: int,
) -> Tuple[Optional[Viewport], DrawStats]:
    """Render one object alone into one eye and measure its footprint."""
    target = FrameBuffer(width, height)
    raster = Rasterizer(target)
    mvp = view_projection @ obj.model_matrix
    stats = raster.draw_mesh(obj.mesh, mvp, obj.shader_or_default())
    mask = target.covered_mask()
    if not mask.any():
        return None, stats
    rows, cols = np.nonzero(mask)
    viewport = Viewport(
        float(cols.min()),
        float(rows.min()),
        float(cols.max()) + 1.0,
        float(rows.max()) + 1.0,
    )
    return viewport, stats


def validate_scene(
    objects: Sequence[SceneObject3D],
    camera: StereoCamera,
    eye_width: int,
    eye_height: int,
    texture_bytes_per_object: int = 1 << 20,
) -> ValidationReport:
    """Measure every object's stereo footprint and build its model twin.

    Each object is rendered in isolation per eye (so overdraw is the
    object's *own* depth complexity, matching the statistical model's
    definition).  The returned ``render_objects`` are statistical
    objects whose coverage/overdraw/viewports are the measured values;
    feeding them to the frameworks makes the simulator price a frame
    whose statistics are rasterizer ground truth.
    """
    if eye_width <= 0 or eye_height <= 0:
        raise ValueError("eye resolution must be positive")
    left_vp, right_vp = camera.view_projections()
    validations: List[ObjectValidation] = []
    render_objects: List[RenderObject] = []
    textures: Dict[str, Texture] = {}

    for index, obj in enumerate(objects):
        vp_l, stats_l = _measure_eye(obj, left_vp, eye_width, eye_height)
        vp_r, stats_r = _measure_eye(obj, right_vp, eye_width, eye_height)
        total = stats_l.merged_with(stats_r)
        bbox_area = (vp_l.area if vp_l else 0.0) + (vp_r.area if vp_r else 0.0)
        # Pixels written when rendered alone = covered pixels per eye.
        covered = total.pixels_written
        coverage = covered / bbox_area if bbox_area > 0 else 0.0
        overdraw = (
            total.fragments_shaded / covered if covered > 0 else 1.0
        )

        if vp_l is None and vp_r is None:
            # Object fully off-screen: no model twin, but record it.
            validations.append(
                ObjectValidation(
                    name=obj.name,
                    viewport_left=None,
                    viewport_right=None,
                    measured_fragments=total.fragments_shaded,
                    measured_pixels=covered,
                    measured_overdraw=overdraw,
                    measured_coverage=0.0,
                    modelled_fragments=0.0,
                )
            )
            continue

        texture = textures.get(obj.texture_name)
        if texture is None:
            texture = Texture(
                texture_id=len(textures),
                name=obj.texture_name,
                size_bytes=texture_bytes_per_object,
            )
            textures[obj.texture_name] = texture

        model = RenderObject(
            object_id=index,
            name=obj.name,
            mesh=obj.mesh.stats_mesh(),
            textures=(texture,),
            viewport_left=vp_l,
            viewport_right=vp_r,
            depth_complexity=max(1.0, overdraw),
            coverage=min(1.0, max(coverage, 1e-6)),
        )
        render_objects.append(model)
        validations.append(
            ObjectValidation(
                name=obj.name,
                viewport_left=vp_l,
                viewport_right=vp_r,
                measured_fragments=total.fragments_shaded,
                measured_pixels=covered,
                measured_overdraw=overdraw,
                measured_coverage=coverage,
                modelled_fragments=model.fragments(Eye.BOTH),
            )
        )

    return ValidationReport(
        objects=tuple(validations), render_objects=tuple(render_objects)
    )
