"""A small software rasterizer: the frame-producing substrate.

The paper's evaluation substrate (ATTILA-sim) is *execution driven*: it
renders real frames, and Fig. 5 shows the actual left/right images its
SMP engine produces.  The statistical simulator in :mod:`repro.gpu` and
:mod:`repro.pipeline` prices draws from *counts* (triangles, covered
pixels, overdraw); this package closes the loop by actually rasterising
triangle meshes so those counts can be **measured** instead of assumed:

- :mod:`repro.render.math3d` — vectors, matrices, projections;
- :mod:`repro.render.mesh3d` — triangle meshes and procedural shapes;
- :mod:`repro.render.framebuffer` — colour + depth targets, PPM output;
- :mod:`repro.render.raster` — the triangle rasterizer (barycentric,
  z-buffered, per-draw statistics);
- :mod:`repro.render.camera` — mono and stereo cameras;
- :mod:`repro.render.stereo` — sequential-stereo vs. SMP rendering of a
  full scene (the Fig. 5 experiment);
- :mod:`repro.render.validate` — measures covered pixels / overdraw of
  rendered objects and compares them with the statistical
  :class:`~repro.scene.objects.RenderObject` model.

Everything is pure numpy; no GPU or external imaging library is used.
"""

from repro.render.camera import Camera, StereoCamera
from repro.render.framebuffer import FrameBuffer, side_by_side
from repro.render.math3d import (
    look_at,
    normalize,
    perspective,
    rotate_y,
    scale_matrix,
    translate,
)
from repro.render.mesh3d import (
    TriangleMesh,
    make_box,
    make_checker_ground,
    make_cylinder,
    make_icosphere,
    make_quad,
)
from repro.render.raster import DrawStats, Rasterizer
from repro.render.stereo import (
    SceneObject3D,
    StereoFrameStats,
    StereoRenderer,
    StereoRenderMode,
)
from repro.render.validate import ObjectValidation, ValidationReport, validate_scene

__all__ = [
    "Camera",
    "DrawStats",
    "FrameBuffer",
    "ObjectValidation",
    "Rasterizer",
    "SceneObject3D",
    "StereoCamera",
    "StereoFrameStats",
    "StereoRenderMode",
    "StereoRenderer",
    "TriangleMesh",
    "ValidationReport",
    "look_at",
    "make_box",
    "make_checker_ground",
    "make_cylinder",
    "make_icosphere",
    "make_quad",
    "normalize",
    "perspective",
    "rotate_y",
    "scale_matrix",
    "side_by_side",
    "translate",
    "validate_scene",
]
