"""Triangle meshes and the procedural shapes the examples render.

A :class:`TriangleMesh` stores vertex positions, per-vertex UVs, and an
index buffer; procedural constructors build the props of a small VR
scene (pillars, flags, ground, spheres) so the Fig. 5 experiment has
actual geometry to rasterise.  Mesh statistics convert directly into
the statistical :class:`~repro.scene.geometry.Mesh` used by the
simulator, which is how :mod:`repro.render.validate` ties measured and
modelled workloads together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.render.math3d import transform_points
from repro.scene.batch import TriangleBatch
from repro.scene.geometry import Mesh

__all__ = [
    "TriangleMesh",
    "make_box",
    "make_checker_ground",
    "make_cylinder",
    "make_icosphere",
    "make_quad",
]

#: Bytes per vertex assumed by the statistical model: position (12),
#: normal (12) and UV (8), matching the default in scene.geometry.Mesh.
VERTEX_BYTES = 32


@dataclass(frozen=True)
class TriangleMesh:
    """An indexed triangle mesh.

    Parameters
    ----------
    positions:
        ``(V, 3)`` float64 vertex positions in model space.
    uvs:
        ``(V, 2)`` float64 texture coordinates in ``[0, 1]``.
    faces:
        ``(T, 3)`` int32 vertex indices, counter-clockwise when viewed
        from the outside (front faces).
    """

    positions: np.ndarray
    uvs: np.ndarray
    faces: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must have shape (V, 3)")
        if self.uvs.shape != (len(self.positions), 2):
            raise ValueError("uvs must have shape (V, 2)")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise ValueError("faces must have shape (T, 3)")
        if len(self.faces) and (
            self.faces.min() < 0 or self.faces.max() >= len(self.positions)
        ):
            raise ValueError("face indices out of range")

    @property
    def num_vertices(self) -> int:
        return len(self.positions)

    @property
    def num_triangles(self) -> int:
        return len(self.faces)

    @cached_property
    def batch(self) -> TriangleBatch:
        """The SoA triangle view (gathered UVs + batched front end).

        Cached per mesh: meshes are immutable and shared across draws,
        so the gather happens once, not once per rasterised draw.
        """
        return TriangleBatch.from_geometry(self.uvs, self.faces)

    def transformed(self, matrix: np.ndarray) -> "TriangleMesh":
        """This mesh with ``matrix`` applied to every vertex."""
        homo = transform_points(matrix, self.positions)
        w = homo[:, 3:4]
        if np.any(w == 0):
            raise ValueError("transform produced w=0 vertices")
        return TriangleMesh(homo[:, :3] / w, self.uvs.copy(), self.faces.copy())

    def merged_with(self, other: "TriangleMesh") -> "TriangleMesh":
        """The union mesh (other's indices are re-based)."""
        return TriangleMesh(
            np.vstack([self.positions, other.positions]),
            np.vstack([self.uvs, other.uvs]),
            np.vstack([self.faces, other.faces + self.num_vertices]),
        )

    def stats_mesh(self, vertex_bytes: int = VERTEX_BYTES) -> Mesh:
        """The statistical-simulator view of this geometry."""
        return Mesh(
            num_vertices=self.num_vertices,
            num_triangles=self.num_triangles,
            vertex_bytes=vertex_bytes,
        )


def _mesh(positions, uvs, faces) -> TriangleMesh:
    return TriangleMesh(
        np.asarray(positions, dtype=np.float64),
        np.asarray(uvs, dtype=np.float64),
        np.asarray(faces, dtype=np.int32),
    )


def make_quad(width: float = 1.0, height: float = 1.0) -> TriangleMesh:
    """A unit quad in the xy-plane, centred at the origin, facing +z."""
    if width <= 0 or height <= 0:
        raise ValueError("quad dimensions must be positive")
    hw, hh = width / 2.0, height / 2.0
    positions = [(-hw, -hh, 0), (hw, -hh, 0), (hw, hh, 0), (-hw, hh, 0)]
    uvs = [(0, 0), (1, 0), (1, 1), (0, 1)]
    faces = [(0, 1, 2), (0, 2, 3)]
    return _mesh(positions, uvs, faces)


def make_box(
    size_x: float = 1.0, size_y: float = 1.0, size_z: float = 1.0
) -> TriangleMesh:
    """An axis-aligned box centred at the origin (12 triangles)."""
    if min(size_x, size_y, size_z) <= 0:
        raise ValueError("box dimensions must be positive")
    hx, hy, hz = size_x / 2.0, size_y / 2.0, size_z / 2.0
    positions = []
    uvs = []
    faces = []
    # One quad per face, with outward winding.
    quads = [
        # (corner order), normal axis commentary is implicit in winding.
        [(-hx, -hy, hz), (hx, -hy, hz), (hx, hy, hz), (-hx, hy, hz)],  # +z
        [(hx, -hy, -hz), (-hx, -hy, -hz), (-hx, hy, -hz), (hx, hy, -hz)],  # -z
        [(hx, -hy, hz), (hx, -hy, -hz), (hx, hy, -hz), (hx, hy, hz)],  # +x
        [(-hx, -hy, -hz), (-hx, -hy, hz), (-hx, hy, hz), (-hx, hy, -hz)],  # -x
        [(-hx, hy, hz), (hx, hy, hz), (hx, hy, -hz), (-hx, hy, -hz)],  # +y
        [(-hx, -hy, -hz), (hx, -hy, -hz), (hx, -hy, hz), (-hx, -hy, hz)],  # -y
    ]
    for quad in quads:
        base = len(positions)
        positions.extend(quad)
        uvs.extend([(0, 0), (1, 0), (1, 1), (0, 1)])
        faces.append((base, base + 1, base + 2))
        faces.append((base, base + 2, base + 3))
    return _mesh(positions, uvs, faces)


def make_cylinder(
    radius: float = 0.5,
    height: float = 2.0,
    segments: int = 16,
) -> TriangleMesh:
    """An open-ended cylinder along +y — the scene's "pillar" prop."""
    if radius <= 0 or height <= 0:
        raise ValueError("cylinder dimensions must be positive")
    if segments < 3:
        raise ValueError("need at least 3 segments")
    positions = []
    uvs = []
    faces = []
    for i in range(segments + 1):
        angle = 2.0 * math.pi * i / segments
        x, z = radius * math.cos(angle), radius * math.sin(angle)
        u = i / segments
        positions.append((x, 0.0, z))
        uvs.append((u, 0.0))
        positions.append((x, height, z))
        uvs.append((u, 1.0))
    for i in range(segments):
        b = 2 * i
        # Wind so outward faces are counter-clockwise from outside.
        faces.append((b, b + 2, b + 3))
        faces.append((b, b + 3, b + 1))
    return _mesh(positions, uvs, faces)


def make_checker_ground(
    extent: float = 20.0, tiles: int = 8
) -> TriangleMesh:
    """A tessellated ground plane at y=0 (two triangles per tile)."""
    if extent <= 0:
        raise ValueError("extent must be positive")
    if tiles < 1:
        raise ValueError("need at least one tile")
    positions = []
    uvs = []
    faces = []
    step = 2.0 * extent / tiles
    for row in range(tiles + 1):
        for col in range(tiles + 1):
            x = -extent + col * step
            z = -extent + row * step
            positions.append((x, 0.0, z))
            uvs.append((col / tiles, row / tiles))
    stride = tiles + 1
    for row in range(tiles):
        for col in range(tiles):
            a = row * stride + col
            b = a + 1
            c = a + stride
            d = c + 1
            # Up-facing (+y) winding.
            faces.append((a, d, b))
            faces.append((a, c, d))
    return _mesh(positions, uvs, faces)


def make_icosphere(radius: float = 1.0, subdivisions: int = 1) -> TriangleMesh:
    """A geodesic sphere built by subdividing an icosahedron.

    ``subdivisions=0`` gives 20 triangles; each level quadruples the
    count (level 2 is 320 triangles — plenty for a scene prop).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if not 0 <= subdivisions <= 4:
        raise ValueError("subdivisions must be in [0, 4]")
    phi = (1.0 + math.sqrt(5.0)) / 2.0
    raw = [
        (-1, phi, 0), (1, phi, 0), (-1, -phi, 0), (1, -phi, 0),
        (0, -1, phi), (0, 1, phi), (0, -1, -phi), (0, 1, -phi),
        (phi, 0, -1), (phi, 0, 1), (-phi, 0, -1), (-phi, 0, 1),
    ]
    verts = [tuple(np.asarray(v) / np.linalg.norm(v)) for v in raw]
    faces = [
        (0, 11, 5), (0, 5, 1), (0, 1, 7), (0, 7, 10), (0, 10, 11),
        (1, 5, 9), (5, 11, 4), (11, 10, 2), (10, 7, 6), (7, 1, 8),
        (3, 9, 4), (3, 4, 2), (3, 2, 6), (3, 6, 8), (3, 8, 9),
        (4, 9, 5), (2, 4, 11), (6, 2, 10), (8, 6, 7), (9, 8, 1),
    ]
    for _ in range(subdivisions):
        midpoint_cache: dict[Tuple[int, int], int] = {}

        def midpoint(a: int, b: int) -> int:
            key = (min(a, b), max(a, b))
            if key in midpoint_cache:
                return midpoint_cache[key]
            mid = np.asarray(verts[a]) + np.asarray(verts[b])
            mid = mid / np.linalg.norm(mid)
            verts.append(tuple(mid))
            midpoint_cache[key] = len(verts) - 1
            return midpoint_cache[key]

        new_faces = []
        for a, b, c in faces:
            ab, bc, ca = midpoint(a, b), midpoint(b, c), midpoint(c, a)
            new_faces.extend(
                [(a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)]
            )
        faces = new_faces
    positions = np.asarray(verts, dtype=np.float64) * radius
    # Spherical UVs.
    uvs = np.zeros((len(positions), 2))
    uvs[:, 0] = 0.5 + np.arctan2(positions[:, 2], positions[:, 0]) / (2 * math.pi)
    uvs[:, 1] = 0.5 + np.arcsin(np.clip(positions[:, 1] / radius, -1, 1)) / math.pi
    return _mesh(positions, uvs, np.asarray(faces, dtype=np.int32))
