"""Trace reading: JSON -> scene, with schema validation.

The reader is strict: unknown format strings, unsupported versions and
structurally broken documents raise :class:`TraceFormatError` with a
message naming the offending field, because a silently mis-read trace
corrupts every downstream experiment.
"""

from __future__ import annotations

import gzip
import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from repro.scene.geometry import Mesh, Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene
from repro.scene.texture import Texture
from repro.trace.schema import FORMAT_NAME, SCHEMA_VERSION

__all__ = ["TraceFormatError", "load_scene", "read_trace"]

PathLike = Union[str, pathlib.Path]


class TraceFormatError(ValueError):
    """A trace document is malformed or has an unsupported version."""


def _require(mapping: Dict[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise TraceFormatError(f"{context}: missing field {key!r}")
    return mapping[key]


def _viewport_from_list(
    raw: Optional[List[float]], context: str
) -> Optional[Viewport]:
    if raw is None:
        return None
    if not isinstance(raw, list) or len(raw) != 4:
        raise TraceFormatError(f"{context}: viewport must be [x0, y0, x1, y1]")
    try:
        return Viewport(*map(float, raw))
    except ValueError as exc:
        raise TraceFormatError(f"{context}: {exc}") from exc


def _object_from_dict(
    raw: Dict[str, Any],
    textures: Dict[int, Texture],
    context: str,
) -> RenderObject:
    mesh_raw = _require(raw, "mesh", context)
    try:
        mesh = Mesh(
            num_vertices=int(_require(mesh_raw, "vertices", context)),
            num_triangles=int(_require(mesh_raw, "triangles", context)),
            vertex_bytes=int(mesh_raw.get("vertex_bytes", 32)),
        )
    except ValueError as exc:
        raise TraceFormatError(f"{context}: {exc}") from exc
    bound = []
    for texture_id in _require(raw, "textures", context):
        if texture_id not in textures:
            raise TraceFormatError(
                f"{context}: references unknown texture {texture_id}"
            )
        bound.append(textures[texture_id])
    try:
        return RenderObject(
            object_id=int(_require(raw, "object_id", context)),
            name=str(_require(raw, "name", context)),
            mesh=mesh,
            textures=tuple(bound),
            viewport_left=_viewport_from_list(raw.get("viewport_left"), context),
            viewport_right=_viewport_from_list(raw.get("viewport_right"), context),
            depth_complexity=float(raw.get("depth_complexity", 1.3)),
            shader_complexity=float(raw.get("shader_complexity", 1.0)),
            coverage=float(raw.get("coverage", 0.45)),
            depends_on=raw.get("depends_on"),
        )
    except ValueError as exc:
        raise TraceFormatError(f"{context}: {exc}") from exc


def read_trace(path: PathLike) -> Scene:
    """Load a trace file written by :func:`repro.trace.writer.write_trace`."""
    path = pathlib.Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = json.loads(path.read_text(encoding="utf-8"))
    return scene_from_document(document)


def scene_from_document(document: Dict[str, Any]) -> Scene:
    """Deserialise a trace document (see :mod:`repro.trace.schema`)."""
    if not isinstance(document, dict):
        raise TraceFormatError("trace document must be a JSON object")
    if document.get("format") != FORMAT_NAME:
        raise TraceFormatError(
            f"not an {FORMAT_NAME} document (format={document.get('format')!r})"
        )
    version = document.get("version")
    if version != SCHEMA_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {version!r} "
            f"(this reader supports {SCHEMA_VERSION})"
        )
    scene_raw = _require(document, "scene", "document")
    name = str(_require(scene_raw, "name", "scene"))
    width = int(_require(scene_raw, "width", "scene"))
    height = int(_require(scene_raw, "height", "scene"))

    textures: Dict[int, Texture] = {}
    for raw in _require(scene_raw, "textures", "scene"):
        texture_id = int(_require(raw, "id", "texture"))
        if texture_id in textures:
            raise TraceFormatError(f"texture: duplicate id {texture_id}")
        try:
            textures[texture_id] = Texture(
                texture_id=texture_id,
                name=str(_require(raw, "name", "texture")),
                size_bytes=int(_require(raw, "size_bytes", "texture")),
            )
        except ValueError as exc:
            raise TraceFormatError(f"texture {texture_id}: {exc}") from exc

    frames = []
    for frame_raw in _require(scene_raw, "frames", "scene"):
        frame_id = int(_require(frame_raw, "frame_id", "frame"))
        objects = tuple(
            _object_from_dict(
                obj_raw, textures, f"frame {frame_id} object {i}"
            )
            for i, obj_raw in enumerate(_require(frame_raw, "objects", "frame"))
        )
        try:
            frames.append(
                Frame(objects=objects, width=width, height=height, frame_id=frame_id)
            )
        except ValueError as exc:
            raise TraceFormatError(f"frame {frame_id}: {exc}") from exc
    if not frames:
        raise TraceFormatError("scene: needs at least one frame")
    try:
        return Scene(name=name, frames=tuple(frames))
    except ValueError as exc:
        raise TraceFormatError(f"scene: {exc}") from exc


def load_scene(path: PathLike) -> Scene:
    """Alias for :func:`read_trace` (the public API name)."""
    return read_trace(path)
