"""Rendering-trace capture, storage and replay.

The paper drives its simulator with rendering traces of real games and
"profile[s] the rendering-traces ... to get the object graphical
properties (e.g., viewports, number of triangles and texture data)"
(Section 6).  This package is that trace layer for the reproduction:

- :mod:`repro.trace.schema` — the versioned JSON document format for
  scenes (frames, objects, meshes, textures);
- :mod:`repro.trace.writer` / :mod:`repro.trace.reader` — lossless
  serialisation of :class:`~repro.scene.scene.Scene` objects to
  ``.json`` / ``.json.gz`` trace files and back;
- :mod:`repro.trace.profiler` — the profiling pass: per-object and
  per-frame property tables (triangles, texture working sets, sharing
  structure) that feed the OO middleware, plus a drive-ready draw
  stream summary.

Traces make experiments portable: a synthetic Table 3 workload can be
captured once and replayed anywhere (including through the CLI's
``oovr trace`` subcommands) without re-running the generator.
"""

from repro.trace.profiler import (
    DrawProfile,
    FrameProfile,
    TraceProfile,
    profile_scene,
)
from repro.trace.reader import TraceFormatError, load_scene, read_trace
from repro.trace.schema import SCHEMA_VERSION, scene_to_document
from repro.trace.writer import save_scene, write_trace

__all__ = [
    "DrawProfile",
    "FrameProfile",
    "SCHEMA_VERSION",
    "TraceFormatError",
    "TraceProfile",
    "load_scene",
    "profile_scene",
    "read_trace",
    "save_scene",
    "scene_to_document",
    "write_trace",
]
