"""Trace writing: scene -> JSON (optionally gzip-compressed)."""

from __future__ import annotations

import gzip
import json
import pathlib
from typing import Union

from repro.scene.scene import Scene
from repro.trace.schema import scene_to_document

__all__ = ["save_scene", "write_trace"]

PathLike = Union[str, pathlib.Path]


def write_trace(scene: Scene, path: PathLike, compress: bool | None = None) -> pathlib.Path:
    """Write ``scene`` as a trace file.

    Compression defaults to the path suffix: ``.gz`` files are gzipped,
    everything else is plain JSON.  Returns the path written.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if compress is None:
        compress = path.suffix == ".gz"
    payload = json.dumps(scene_to_document(scene), indent=None, sort_keys=True)
    if compress:
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")
    return path


def save_scene(scene: Scene, path: PathLike) -> pathlib.Path:
    """Alias for :func:`write_trace` (the public API name)."""
    return write_trace(scene, path)
