"""The trace document format.

A trace is one JSON document per scene:

.. code-block:: json

    {
      "format": "oovr-trace",
      "version": 1,
      "scene": {
        "name": "HL2-1280",
        "width": 1280, "height": 1024,
        "textures": [{"id": 0, "name": "stone", "size_bytes": 4194304}],
        "frames": [
          {"frame_id": 0,
           "objects": [
             {"object_id": 0, "name": "pillar1",
              "mesh": {"vertices": 900, "triangles": 1500, "vertex_bytes": 32},
              "textures": [0],
              "viewport_left": [10.0, 20.0, 200.0, 360.0],
              "viewport_right": [14.0, 20.0, 204.0, 360.0],
              "depth_complexity": 1.3, "shader_complexity": 1.0,
              "coverage": 0.45, "depends_on": null}
           ]}
        ]
      }
    }

Textures are interned at scene scope (the list at ``scene.textures``)
and referenced by id from objects, preserving the *identity*-based
sharing the TSL computation relies on: two objects that share a texture
in memory share it after a round trip.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.scene.geometry import Viewport
from repro.scene.objects import RenderObject
from repro.scene.scene import Frame, Scene

__all__ = ["FORMAT_NAME", "SCHEMA_VERSION", "scene_to_document"]

#: Magic string identifying trace documents.
FORMAT_NAME = "oovr-trace"
#: Current schema version; readers accept only versions they know.
SCHEMA_VERSION = 1


def _viewport_to_list(viewport: Optional[Viewport]) -> Optional[List[float]]:
    if viewport is None:
        return None
    return [viewport.x0, viewport.y0, viewport.x1, viewport.y1]


def _object_to_dict(obj: RenderObject) -> Dict[str, Any]:
    return {
        "object_id": obj.object_id,
        "name": obj.name,
        "mesh": {
            "vertices": obj.mesh.num_vertices,
            "triangles": obj.mesh.num_triangles,
            "vertex_bytes": obj.mesh.vertex_bytes,
        },
        "textures": [t.texture_id for t in obj.textures],
        "viewport_left": _viewport_to_list(obj.viewport_left),
        "viewport_right": _viewport_to_list(obj.viewport_right),
        "depth_complexity": obj.depth_complexity,
        "shader_complexity": obj.shader_complexity,
        "coverage": obj.coverage,
        "depends_on": obj.depends_on,
    }


def _frame_to_dict(frame: Frame) -> Dict[str, Any]:
    return {
        "frame_id": frame.frame_id,
        "objects": [_object_to_dict(obj) for obj in frame.objects],
    }


def scene_to_document(scene: Scene) -> Dict[str, Any]:
    """Serialise ``scene`` into a trace document (a plain dict)."""
    textures: Dict[int, Dict[str, Any]] = {}
    for frame in scene:
        for obj in frame.objects:
            for texture in obj.textures:
                textures.setdefault(
                    texture.texture_id,
                    {
                        "id": texture.texture_id,
                        "name": texture.name,
                        "size_bytes": texture.size_bytes,
                    },
                )
    return {
        "format": FORMAT_NAME,
        "version": SCHEMA_VERSION,
        "scene": {
            "name": scene.name,
            "width": scene.width,
            "height": scene.height,
            "textures": [textures[key] for key in sorted(textures)],
            "frames": [_frame_to_dict(frame) for frame in scene],
        },
    }
