"""The trace profiling pass.

Before rendering, the paper "profile[s] the entire rendering process to
get the total number of rendering objects" (Section 4.3) and extracts
each object's graphical properties — viewports, triangle counts,
texture data (Section 6).  :func:`profile_scene` is that pass: it walks
a scene and produces the property tables the OO middleware and the
distribution engine consume, plus scene-level sharing statistics that
explain *why* TSL batching helps a given workload.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.core.tsl import texture_sharing_level
from repro.scene.objects import Eye, RenderObject
from repro.scene.scene import Frame, Scene

__all__ = ["DrawProfile", "FrameProfile", "TraceProfile", "profile_scene"]


@dataclass(frozen=True)
class DrawProfile:
    """The per-object property record the middleware consumes."""

    object_id: int
    name: str
    triangles: int
    vertices: int
    texture_bytes: int
    texture_ids: Tuple[int, ...]
    covered_pixels: float
    fragments: float
    is_stereo: bool

    @classmethod
    def from_object(cls, obj: RenderObject) -> "DrawProfile":
        return cls(
            object_id=obj.object_id,
            name=obj.name,
            triangles=obj.mesh.num_triangles,
            vertices=obj.mesh.num_vertices,
            texture_bytes=obj.texture_bytes,
            texture_ids=tuple(t.texture_id for t in obj.textures),
            covered_pixels=obj.covered_pixels(Eye.BOTH),
            fragments=obj.fragments(Eye.BOTH),
            is_stereo=obj.is_stereo,
        )


@dataclass(frozen=True)
class FrameProfile:
    """Aggregates for one frame."""

    frame_id: int
    num_objects: int
    total_triangles: int
    total_vertices: int
    total_fragments: float
    unique_texture_bytes: int
    texture_sharing_ratio: float
    stereo_fraction: float
    draws: Tuple[DrawProfile, ...]

    @classmethod
    def from_frame(cls, frame: Frame) -> "FrameProfile":
        draws = tuple(DrawProfile.from_object(obj) for obj in frame.objects)
        stereo = sum(1 for d in draws if d.is_stereo)
        return cls(
            frame_id=frame.frame_id,
            num_objects=len(draws),
            total_triangles=frame.total_triangles,
            total_vertices=frame.total_vertices,
            total_fragments=frame.total_fragments,
            unique_texture_bytes=frame.texture_bytes,
            texture_sharing_ratio=frame.texture_sharing_ratio(),
            stereo_fraction=stereo / len(draws),
            draws=draws,
        )


@dataclass(frozen=True)
class TraceProfile:
    """The whole-scene profile: what the runtime knows before rendering."""

    scene_name: str
    width: int
    height: int
    num_frames: int
    frames: Tuple[FrameProfile, ...]
    #: Histogram of how many objects bind each texture (by texture id).
    texture_fanout: Mapping[int, int]
    #: Pairs of distinct objects in frame 0 whose TSL clears the paper's
    #: 0.5 grouping threshold — the batching opportunity count.
    shareable_pairs: int

    @property
    def representative(self) -> FrameProfile:
        return self.frames[0]

    def table(self, max_rows: int = 12) -> str:
        """A text table of the representative frame's largest draws."""
        frame = self.representative
        rows = sorted(frame.draws, key=lambda d: -d.fragments)[:max_rows]
        lines = [
            f"trace {self.scene_name}: {self.width}x{self.height}, "
            f"{self.num_frames} frames, {frame.num_objects} objects/frame",
            f"frame 0: {frame.total_triangles} triangles, "
            f"{frame.total_fragments:.0f} fragments, "
            f"texture sharing ratio {frame.texture_sharing_ratio:.2f}, "
            f"{100 * frame.stereo_fraction:.0f}% stereo objects, "
            f"{self.shareable_pairs} TSL>0.5 pairs",
            f"{'object':<18}{'tris':>8}{'frag':>12}{'tex KiB':>9}  textures",
        ]
        for draw in rows:
            lines.append(
                f"{draw.name:<18}{draw.triangles:>8}{draw.fragments:>12.0f}"
                f"{draw.texture_bytes / 1024:>9.0f}  {list(draw.texture_ids)}"
            )
        return "\n".join(lines)


def _count_shareable_pairs(frame: Frame, threshold: float = 0.5) -> int:
    """Distinct object pairs whose TSL exceeds ``threshold``."""
    count = 0
    objects = frame.objects
    for i, root in enumerate(objects):
        for other in objects[i + 1 :]:
            if texture_sharing_level(root.textures, other.textures) > threshold:
                count += 1
    return count


def profile_scene(scene: Scene) -> TraceProfile:
    """Profile every frame of ``scene`` (the pre-render pass)."""
    frames = tuple(FrameProfile.from_frame(frame) for frame in scene)
    fanout: Counter = Counter()
    for obj in scene.representative_frame.objects:
        for texture in obj.textures:
            fanout[texture.texture_id] += 1
    return TraceProfile(
        scene_name=scene.name,
        width=scene.width,
        height=scene.height,
        num_frames=len(scene),
        frames=frames,
        texture_fanout=dict(fanout),
        shareable_pairs=_count_shareable_pairs(scene.representative_frame),
    )
