"""Wall-clock phase profiling of the simulator hot path.

``oovr run --profile`` and :meth:`Sweep.run(profile=True)
<repro.session.session.Sweep.run>` time one cell's five cost centres —
scene build, work-unit binding, Eq. 3 stage/memory pricing, schedule
execution and result-cache I/O — and report them as a small table
(and, for sweeps, as ``profile_*`` record columns).

The machinery is deliberately passive: instrumentation sites call
:func:`phase`, which is a no-op unless a :class:`PhaseProfile` has
been activated with :func:`capture` for the current cell, so figure
runs and golden-file sweeps pay (almost) nothing and stay
byte-identical.  Timings use *self time*: a phase entered inside
another phase (stage pricing inside binding, say) is charged to the
inner phase only, so the table's rows add up instead of
double-counting.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PHASES",
    "PhaseProfile",
    "add_counter",
    "capture",
    "current_profile",
    "phase",
]

#: The hot-path cost centres, in reporting order.  ``scene`` is scene
#: construction (memoised per process, so repeat cells show ~0);
#: ``bind`` covers middleware batch grouping and merging (the
#: ``_BatchBuilder`` front end) plus the engine's memory-image
#: resolution; ``price`` covers Eq. 3 frame characterisation plus the
#: engine's stage/memory pricing; ``execute`` everything else inside
#: the render (dispatch, SMP, event simulation); ``cache``
#: result-cache I/O.  Compiled-plan store loads
#: (:mod:`repro.plan.store`) deliberately stay *outside* bind/price —
#: they surface as the ``plan_load_s`` counter — so a warm store
#: genuinely shrinks those phases' share.
PHASES = ("scene", "bind", "price", "execute", "cache")


class PhaseProfile:
    """Accumulated wall seconds (self time) per hot-path phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Free-form accumulated quantities (:func:`add_counter`) —
        #: e.g. the event engine's window-loop statistics.  Unlike
        #: :attr:`seconds` these are not wall times and never enter
        #: :attr:`total_seconds`.
        self.counters: Dict[str, float] = {}
        #: (phase name, entry time, accumulated child elapsed).
        self._stack: List[Tuple[str, float, float]] = []

    def _enter(self, name: str) -> None:
        self._stack.append((name, time.perf_counter(), 0.0))

    def _exit(self) -> None:
        name, start, child = self._stack.pop()
        elapsed = time.perf_counter() - start
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed - child
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._stack:
            parent, parent_start, parent_child = self._stack[-1]
            self._stack[-1] = (parent, parent_start, parent_child + elapsed)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def to_dict(self) -> Dict[str, float]:
        """``{phase: seconds}`` over the canonical phases (0.0 when
        never entered), plus any ad-hoc phases that were timed."""
        out = {name: self.seconds.get(name, 0.0) for name in PHASES}
        for name, seconds in self.seconds.items():
            if name not in out:
                out[name] = seconds
        return out

    def merged_with(self, other: "PhaseProfile") -> "PhaseProfile":
        """A new profile with both sides' times and counts summed."""
        merged = PhaseProfile()
        for source in (self, other):
            for name, seconds in source.seconds.items():
                merged.seconds[name] = merged.seconds.get(name, 0.0) + seconds
            for name, calls in source.calls.items():
                merged.calls[name] = merged.calls.get(name, 0) + calls
            for name, value in source.counters.items():
                merged.counters[name] = merged.counters.get(name, 0.0) + value
        return merged

    def table(self, title: str = "phase breakdown") -> str:
        """The profile as a small aligned text table."""
        total = self.total_seconds
        lines = [f"{title} ({total * 1e3:.1f} ms total):"]
        for name, seconds in self.to_dict().items():
            share = (seconds / total * 100.0) if total > 0 else 0.0
            calls = self.calls.get(name, 0)
            lines.append(
                f"  {name:<8} {seconds * 1e3:>9.2f} ms  {share:>5.1f} %"
                f"  ({calls} call(s))"
            )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<22} {self.counters[name]:g}")
            windows = self.counters.get("event_windows", 0.0)
            if windows > 0:
                rows = self.counters.get("event_live_rows", 0.0)
                loop_s = self.counters.get("event_loop_s", 0.0)
                lines.append(
                    f"  window loop: {windows:.0f} windows, "
                    f"{rows / windows:.1f} mean live rows/window, "
                    f"{loop_s * 1e3:.2f} ms loop wall"
                )
        return "\n".join(lines)


#: The profile instrumentation currently feeds, if any.
_active: Optional[PhaseProfile] = None


def current_profile() -> Optional[PhaseProfile]:
    """The :class:`PhaseProfile` being captured, or ``None``."""
    return _active


def add_counter(name: str, value: float) -> None:
    """Accumulate ``value`` onto counter ``name`` of the active profile.

    A no-op when no :func:`capture` is active, so instrumented hot
    paths (the event engine's window loop above all) stay free on
    unprofiled runs.
    """
    if _active is not None:
        counters = _active.counters
        counters[name] = counters.get(name, 0.0) + value


class capture:
    """Context manager routing :func:`phase` timings into a profile.

    Not reentrant: profiling an already-profiled region raises, since
    silently swapping collectors would misattribute the outer cell's
    remaining phases.
    """

    def __init__(self, profile: PhaseProfile) -> None:
        self.profile = profile

    def __enter__(self) -> PhaseProfile:
        global _active
        if _active is not None:
            raise RuntimeError("a PhaseProfile capture is already active")
        _active = self.profile
        return self.profile

    def __exit__(self, *exc) -> None:
        global _active
        _active = None


class _PhaseTimer:
    """A reusable, stateless timer for one phase name.

    All state lives on the active profile's stack, so module-level
    singletons are shared safely across call sites; when no capture is
    active both methods fall through immediately, keeping the
    golden-path overhead to a couple of attribute loads.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> None:
        if _active is not None:
            _active._enter(self.name)

    def __exit__(self, *exc) -> None:
        if _active is not None:
            _active._exit()


#: Timers for the canonical phases (reused; creating one per call
#: would double the inactive-path cost for nothing).
_TIMERS = {name: _PhaseTimer(name) for name in PHASES}


def phase(name: str) -> _PhaseTimer:
    """The (shared) timer context manager for ``name``."""
    timer = _TIMERS.get(name)
    if timer is None:
        timer = _TIMERS[name] = _PhaseTimer(name)
    return timer
