"""``oovr serve`` — the sweep service daemon.

A long-running coordinator that turns the human-driven scatter/merge
recipe (:mod:`repro.session.executor`) into a service:

- **one content-addressed cache** (:class:`~repro.session.cache.ResultCache`)
  is the shared result store.  A submitted grid first resolves against
  it — a repeated grid is answered 100 % from disk without touching
  the simulator, which is the serving story: most traffic is a pure
  cache read;
- **a persistent job queue**: ``POST /sweeps`` accepts a serialized
  spec list (the :class:`~repro.session.spec.RunSpec` vocabulary over
  the wire, :mod:`repro.service.protocol`), returns a job id, and
  ``GET /sweeps/<id>`` / ``GET /sweeps/<id>/events`` stream per-cell
  completion events — the service-side spelling of the
  ``on_result(spec, result, cached)`` callback;
- **worker leases**: registered workers (:mod:`repro.service.worker`)
  lease pending cells, execute them, and upload cache-entry payloads
  that the server folds in with :meth:`ResultCache.merge_entry
  <repro.session.cache.ResultCache.merge_entry>` semantics — identical
  payloads are no-ops, byte-level disagreement marks the job errored
  (model/schema skew between hosts, the
  :class:`~repro.session.cache.CacheMergeError` contract).  Leases
  carry a deadline; an expired lease returns its cells to the pending
  set, so a worker dying mid-lease degrades to a re-dispatch instead
  of wedging the job.  Assignment prefers the cells
  :func:`~repro.session.executor.shard_of` maps to the worker's slot
  (the shard executor's content partition, so a stable worker fleet
  gets deterministic, disjoint slices) and falls back to stealing any
  pending cell once its own slice drains.

The HTTP layer is a stdlib ``ThreadingHTTPServer`` speaking JSON — no
dependencies beyond the standard library.  All coordination state
lives in :class:`SweepService`, which is usable (and tested) without a
socket.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_version,
    entry_documents,
    specs_from_wire,
    specs_to_wire,
)
from repro.session.cache import CacheMergeError, ResultCache, spec_key
from repro.session.executor import shard_of
from repro.session.spec import RunSpec, SpecError

#: Seconds a worker may sit on a lease before its cells re-dispatch.
DEFAULT_LEASE_TIMEOUT = 60.0
#: Cells handed out per lease unless the worker asks otherwise.
DEFAULT_LEASE_LIMIT = 1


class UnknownResource(KeyError):
    """An id (job, worker, lease, key) the service has never issued."""


@dataclass
class _Cell:
    """One grid cell of one job, tracked through its lifecycle."""

    spec: RunSpec
    key: str
    #: Position in the submitted grid (events/results keep grid order
    #: recoverable client-side).
    index: int
    state: str = "pending"  # pending -> leased -> done
    #: True when the submit-time cache already held the result.
    cached: bool = False
    lease: Optional[str] = None


@dataclass
class _Lease:
    lease_id: str
    worker_id: str
    job_id: str
    keys: List[str]
    deadline: float


@dataclass
class _Worker:
    worker_id: str
    name: str
    #: Registration slot, used for shard_of-preferred assignment.
    slot: int
    last_seen: float
    cells_done: int = 0


class _Job:
    """One submitted grid and its completion bookkeeping."""

    def __init__(self, job_id: str, specs: List[RunSpec]) -> None:
        self.job_id = job_id
        self.cells: List[_Cell] = []
        self.by_key: Dict[str, _Cell] = {}
        for index, spec in enumerate(specs):
            cell = _Cell(spec=spec, key=spec_key(spec), index=index)
            if cell.key in self.by_key:
                raise ProtocolError(
                    f"duplicate cell in grid: {cell.key[:12]}… "
                    f"({spec.framework} {spec.workload})"
                )
            self.cells.append(cell)
            self.by_key[cell.key] = cell
        #: Per-cell completion events, appended in completion order;
        #: each carries a monotonically increasing ``seq``.
        self.events: List[Dict[str, object]] = []
        self.error: Optional[str] = None
        #: Cells that executed on a worker (vs. submit-time hits).
        self.executed = 0

    @property
    def hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def done(self) -> int:
        return sum(1 for cell in self.cells if cell.state == "done")

    @property
    def state(self) -> str:
        if self.error is not None:
            return "error"
        return "done" if self.done == len(self.cells) else "running"

    def complete(self, cell: _Cell, cached: bool, worker: Optional[str]) -> None:
        cell.state = "done"
        cell.cached = cached
        cell.lease = None
        self.events.append(
            {
                "seq": len(self.events),
                "key": cell.key,
                "index": cell.index,
                "cached": cached,
                "worker": worker,
            }
        )

    def summary(self) -> Dict[str, object]:
        return {
            "job": self.job_id,
            "state": self.state,
            "cells": len(self.cells),
            "done": self.done,
            "hits": self.hits,
            "executed": self.executed,
            "error": self.error,
        }


class SweepService:
    """The lock-protected coordination state behind the HTTP surface."""

    def __init__(
        self,
        cache: Union[ResultCache, str, Path],
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock=time.monotonic,
    ) -> None:
        if not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.cache = cache
        self.lease_timeout = float(lease_timeout)
        self.clock = clock
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._workers: Dict[str, _Worker] = {}
        self._leases: Dict[str, _Lease] = {}
        #: Lease re-dispatches caused by expiry (a worker died or
        #: overran); visible in /stats so degradation is observable.
        self.expired_leases = 0
        self.uploads = 0

    # -- internals ----------------------------------------------------------

    def _job(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownResource(f"unknown job {job_id!r}") from None

    def _expire_leases(self) -> None:
        """Return timed-out leases' cells to the pending pool."""
        now = self.clock()
        for lease_id in [
            lease_id
            for lease_id, lease in self._leases.items()
            if lease.deadline <= now
        ]:
            lease = self._leases.pop(lease_id)
            self.expired_leases += 1
            job = self._jobs.get(lease.job_id)
            if job is None:
                continue
            for key in lease.keys:
                cell = job.by_key.get(key)
                if cell is not None and cell.lease == lease_id:
                    cell.state = "pending"
                    cell.lease = None

    # -- client surface -----------------------------------------------------

    def submit(self, documents: object) -> Dict[str, object]:
        """``POST /sweeps``: a serialized grid -> job id + cache hits.

        Every cell already present in the cache completes immediately
        (in grid order, so a fully-cached grid is done before the
        response is written and no worker is ever consulted).
        """
        specs = specs_from_wire(documents)
        job = _Job(uuid.uuid4().hex[:12], specs)
        with self._lock:
            for cell in job.cells:
                if self.cache.get(cell.spec) is not None:
                    job.complete(cell, cached=True, worker=None)
            self._jobs[job.job_id] = job
            return job.summary()

    def job_status(self, job_id: str) -> Dict[str, object]:
        with self._lock:
            self._expire_leases()
            return self._job(job_id).summary()

    def job_events(self, job_id: str, since: int = 0) -> Dict[str, object]:
        """Completion events ``seq >= since`` plus the job summary."""
        with self._lock:
            self._expire_leases()
            job = self._job(job_id)
            events = job.events[since:]
            status = job.summary()
            status["events"] = list(events)
            status["next"] = since + len(events)
            return status

    def fetch_results(
        self, job_id: str, keys: object
    ) -> Dict[str, object]:
        """Entry payloads for completed cells of one job, by key."""
        if not isinstance(keys, list) or not all(
            isinstance(key, str) for key in keys
        ):
            raise ProtocolError("'keys' must be a list of entry keys")
        with self._lock:
            job = self._job(job_id)
            payloads: Dict[str, str] = {}
            for key in keys:
                cell = job.by_key.get(key)
                if cell is None:
                    raise UnknownResource(
                        f"job {job_id} has no cell {key[:12]}…"
                    )
                if cell.state != "done":
                    raise ProtocolError(
                        f"cell {key[:12]}… is not complete yet"
                    )
                path = self.cache.root / f"{key}.json"
                payloads[key] = path.read_text(encoding="utf-8")
            return {"job": job_id, "results": payloads}

    # -- worker surface -----------------------------------------------------

    def register_worker(self, name: object) -> Dict[str, object]:
        with self._lock:
            worker = _Worker(
                worker_id=uuid.uuid4().hex[:12],
                name=str(name or "worker"),
                slot=len(self._workers),
                last_seen=self.clock(),
            )
            self._workers[worker.worker_id] = worker
            return {
                "worker": worker.worker_id,
                "slot": worker.slot,
                "lease_timeout": self.lease_timeout,
            }

    def _worker(self, worker_id: str) -> _Worker:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise UnknownResource(f"unknown worker {worker_id!r}") from None

    def lease(
        self, worker_id: str, limit: int = DEFAULT_LEASE_LIMIT
    ) -> Dict[str, object]:
        """Hand up to ``limit`` pending cells to a worker.

        Jobs drain in submission order.  Within a job, the worker is
        first offered the cells whose :func:`shard_of` slot (over the
        current fleet size) is its own — the shard executor's
        deterministic content partition, so a stable fleet splits a
        grid exactly like ``--shard I/N`` hosts would — and steals
        other slots' cells only when its own slice is empty (covering
        dead or slow peers).
        """
        limit = int(limit)
        if limit < 1:
            raise ProtocolError("lease limit must be at least 1")
        with self._lock:
            self._expire_leases()
            worker = self._worker(worker_id)
            worker.last_seen = self.clock()
            fleet = max(len(self._workers), 1)
            slot = worker.slot % fleet
            for job in self._jobs.values():
                if job.state != "running":
                    continue
                pending = [
                    cell for cell in job.cells if cell.state == "pending"
                ]
                if not pending:
                    continue
                pending.sort(
                    key=lambda cell: (
                        shard_of(cell.spec, fleet) != slot,
                        cell.index,
                    )
                )
                batch = pending[:limit]
                lease = _Lease(
                    lease_id=uuid.uuid4().hex[:12],
                    worker_id=worker_id,
                    job_id=job.job_id,
                    keys=[cell.key for cell in batch],
                    deadline=self.clock() + self.lease_timeout,
                )
                for cell in batch:
                    cell.state = "leased"
                    cell.lease = lease.lease_id
                self._leases[lease.lease_id] = lease
                return {
                    "lease": lease.lease_id,
                    "job": job.job_id,
                    "deadline_seconds": self.lease_timeout,
                    "specs": specs_to_wire([cell.spec for cell in batch]),
                }
            return {"lease": None, "specs": []}

    def upload(
        self,
        worker_id: str,
        job_id: str,
        entries: List[Dict[str, object]],
        lease_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Fold executed entries into the cache and complete their cells.

        Content-addressed merging makes uploads safe regardless of
        lease state: a late upload from an expired lease (the worker
        was slow, not dead) lands as a no-op if the re-dispatched copy
        already arrived with identical bytes.  *Different* bytes for
        one key are a :class:`CacheMergeError` — the job is marked
        errored, because two workers disagreeing about a content
        address means the fleet is running skewed models.
        """
        with self._lock:
            self._expire_leases()
            worker = self._worker(worker_id)
            worker.last_seen = self.clock()
            job = self._job(job_id)
            merged = {"copied": 0, "identical": 0}
            for entry in entries:
                key = str(entry["key"])
                payload = str(entry["payload"])
                cell = job.by_key.get(key)
                if cell is None:
                    raise UnknownResource(
                        f"job {job_id} has no cell {key[:12]}…"
                    )
                try:
                    outcome = self.merge_payload(key, payload)
                except CacheMergeError as error:
                    job.error = str(error)
                    raise
                merged[outcome] = merged.get(outcome, 0) + 1
                self.uploads += 1
                if cell.state != "done":
                    job.executed += 1
                    worker.cells_done += 1
                    job.complete(cell, cached=False, worker=worker.name)
            if lease_id is not None and lease_id in self._leases:
                lease = self._leases[lease_id]
                lease.keys = [
                    key
                    for key in lease.keys
                    if job.by_key[key].state != "done"
                ]
                if not lease.keys:
                    del self._leases[lease_id]
            status = job.summary()
            status.update(merged)
            return status

    def merge_payload(self, key: str, payload: str) -> str:
        """One uploaded entry -> the cache, ``merge_entry`` semantics."""
        return self.cache.merge_entry(key, payload, on_conflict="error")

    # -- shared status surfaces ---------------------------------------------

    def cache_status(self) -> Dict[str, object]:
        """``GET /cache`` — the same document ``oovr cache info --json``
        prints (one code path: :meth:`ResultCache.status`)."""
        with self._lock:
            return self.cache.status()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._expire_leases()
            return {
                "version": PROTOCOL_VERSION,
                "lease_timeout": self.lease_timeout,
                "jobs": [job.summary() for job in self._jobs.values()],
                "workers": [
                    {
                        "worker": worker.worker_id,
                        "name": worker.name,
                        "slot": worker.slot,
                        "cells_done": worker.cells_done,
                    }
                    for worker in self._workers.values()
                ],
                "active_leases": len(self._leases),
                "expired_leases": self.expired_leases,
                "uploads": self.uploads,
                "cells_executed": sum(
                    job.executed for job in self._jobs.values()
                ),
                "cells_cached": sum(
                    job.hits for job in self._jobs.values()
                ),
                "cache": self.cache.stats.summary(),
            }


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "oovr-serve/1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, code: int, document: Dict[str, object]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not JSON: {error}") from None
        if not isinstance(document, dict):
            raise ProtocolError("request body must be a JSON object")
        check_version(document, "request")
        return document

    def _dispatch(self, method: str) -> None:
        """Route one request; malformed input must never kill the
        server — every error maps to a JSON response."""
        parts = urlsplit(self.path)
        segments = [piece for piece in parts.path.split("/") if piece]
        query = parse_qs(parts.query)
        try:
            self._route(method, segments, query)
        except (ProtocolError, SpecError, ValueError) as error:
            if isinstance(error, CacheMergeError):
                self._reply(409, {"error": str(error), "conflict": True})
            else:
                self._reply(400, {"error": str(error)})
        except UnknownResource as error:
            self._reply(404, {"error": str(error.args[0])})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:  # pragma: no cover - belt and braces
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    def _route(
        self,
        method: str,
        segments: List[str],
        query: Dict[str, List[str]],
    ) -> None:
        service = self.service
        route = (method, *segments)
        if route == ("GET", "health"):
            self._reply(200, {"ok": True, "version": PROTOCOL_VERSION})
        elif route == ("GET", "cache"):
            self._reply(200, service.cache_status())
        elif route == ("GET", "stats"):
            self._reply(200, service.stats())
        elif route == ("POST", "sweeps"):
            body = self._body()
            self._reply(200, service.submit(body.get("specs")))
        elif method == "GET" and len(segments) == 2 and segments[0] == "sweeps":
            self._reply(200, service.job_status(segments[1]))
        elif (
            method == "GET"
            and len(segments) == 3
            and segments[0] == "sweeps"
            and segments[2] == "events"
        ):
            since = int(query.get("since", ["0"])[0])
            self._reply(200, service.job_events(segments[1], since=since))
        elif (
            method == "POST"
            and len(segments) == 3
            and segments[0] == "sweeps"
            and segments[2] == "results"
        ):
            body = self._body()
            self._reply(
                200, service.fetch_results(segments[1], body.get("keys"))
            )
        elif route == ("POST", "workers"):
            body = self._body()
            self._reply(200, service.register_worker(body.get("name")))
        elif route == ("POST", "lease"):
            body = self._body()
            self._reply(
                200,
                service.lease(
                    str(body.get("worker")),
                    limit=body.get("limit", DEFAULT_LEASE_LIMIT),
                ),
            )
        elif route == ("POST", "upload"):
            body = self._body()
            self._reply(
                200,
                service.upload(
                    str(body.get("worker")),
                    str(body.get("job")),
                    entry_documents(body),
                    lease_id=body.get("lease"),
                ),
            )
        else:
            raise UnknownResource(
                f"no such endpoint: {method} /{'/'.join(segments)}"
            )

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class SweepServer(ThreadingHTTPServer):
    """The daemon: a threaded HTTP server owning one :class:`SweepService`.

    ``daemon_threads`` keeps request threads from blocking shutdown;
    state consistency is the service's lock, not thread lifetimes.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        cache: Union[ResultCache, str, Path],
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = SweepService(cache, lease_timeout=lease_timeout)
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    cache: Union[ResultCache, str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    verbose: bool = False,
) -> SweepServer:
    """Build a :class:`SweepServer` bound to ``host:port`` (0 = any
    free port; read the chosen one back off ``server.url``).  The
    caller decides how to run it — ``serve_forever()`` in the CLI, a
    background thread in tests."""
    return SweepServer(
        (host, port), cache, lease_timeout=lease_timeout, verbose=verbose
    )
