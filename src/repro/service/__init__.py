"""Sweep service: ``oovr serve`` daemon, worker agents, remote executor.

The server/client split of *what* renders from *where* it renders, at
the sweep layer: a long-running daemon (:mod:`repro.service.server`)
owns a content-addressed :class:`~repro.session.cache.ResultCache` and
a job queue; worker agents (:mod:`repro.service.worker`) lease
spec-addressed cells and upload cache-entry payloads; clients
(:mod:`repro.service.client`) submit grids and poll per-cell progress.
:class:`RemoteExecutor` plugs the whole thing into the standard
executor registry as ``remote``, so
``Sweep.run(executor="remote")`` — and every figure/study built on
``Sweep`` — can run against a farm without code changes, producing
records byte-identical to the ``serial`` backend.

Wire format and invariants live in :mod:`repro.service.protocol`.
"""

from repro.service.client import (
    SERVER_ENV,
    RemoteExecutor,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    config_from_wire,
    config_to_wire,
    spec_from_wire,
    spec_to_wire,
    specs_from_wire,
    specs_to_wire,
)
from repro.service.server import (
    DEFAULT_LEASE_TIMEOUT,
    SweepServer,
    SweepService,
    serve,
)
from repro.service.worker import SweepWorker

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteExecutor",
    "SERVER_ENV",
    "ServiceClient",
    "ServiceError",
    "SweepServer",
    "SweepService",
    "SweepWorker",
    "config_from_wire",
    "config_to_wire",
    "serve",
    "spec_from_wire",
    "spec_to_wire",
    "specs_from_wire",
    "specs_to_wire",
]
