"""``oovr worker`` — a host agent executing leased sweep cells.

A worker registers with a daemon (:mod:`repro.service.server`), then
loops: lease pending cells, execute them through the **existing**
in-process executors (:class:`~repro.session.executor.SerialExecutor`,
or a :class:`~repro.session.executor.ProcessExecutor` when built with
``jobs > 1`` — the worker adds no execution semantics of its own),
encode each result with :func:`repro.session.cache.encode_entry`, and
upload the entry payloads for the server to merge.

Failure model: the worker is stateless between leases.  If it dies
mid-lease, the server re-dispatches the cells when the lease deadline
passes; if it is merely slow, its late upload lands as a byte-identical
no-op next to the re-dispatched copy.  The worker exits on its own
when the server becomes unreachable (the daemon went away) or when
``max_idle`` seconds pass without work — both make process lifecycle
manageable from shell scripts and CI without a supervisor.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.plan.store import PlanStore, plan_store_scope
from repro.scene.store import SceneStore, scene_store_scope
from repro.service.client import ServiceClient, ServiceError
from repro.session.cache import CacheMergeError, encode_entry, spec_key
from repro.session.executor import ProcessExecutor, SerialExecutor
from repro.service.protocol import specs_from_wire

#: Unreachable-server retries before the worker gives up and exits.
DEFAULT_RETRIES = 3


class SweepWorker:
    """One work-pulling agent bound to one daemon."""

    def __init__(
        self,
        server: str,
        jobs: int = 1,
        name: Optional[str] = None,
        poll_interval: float = 0.5,
        lease_limit: Optional[int] = None,
        max_idle: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        client: Optional[ServiceClient] = None,
        scene_store: Optional[Union[SceneStore, str, Path]] = None,
        plan_store: Optional[Union[PlanStore, str, Path]] = None,
    ) -> None:
        self.client = client or ServiceClient(server)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.jobs = max(int(jobs), 1)
        # Lease in executor-sized batches so a process-pool worker has
        # enough cells in flight to keep its pool busy.
        self.lease_limit = (
            int(lease_limit) if lease_limit is not None else self.jobs
        )
        if self.lease_limit < 1:
            raise ValueError("lease_limit must be at least 1")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.poll_interval = float(poll_interval)
        self.max_idle = max_idle
        self.retries = max(int(retries), 1)
        self.executor = (
            ProcessExecutor(self.jobs) if self.jobs > 1 else SerialExecutor()
        )
        #: Optional compiled-scene store (:mod:`repro.scene.store`):
        #: every lease executes under it, so a fleet sharing one store
        #: directory compiles each workload point once across hosts.
        self.scene_store: Optional[SceneStore] = (
            scene_store
            if isinstance(scene_store, SceneStore) or scene_store is None
            else SceneStore(scene_store)
        )
        #: Optional compiled work-plan store (:mod:`repro.plan.store`):
        #: a fleet sharing one directory characterises each (workload,
        #: cost config) point once across hosts.
        self.plan_store: Optional[PlanStore] = (
            plan_store
            if isinstance(plan_store, PlanStore) or plan_store is None
            else PlanStore(plan_store)
        )
        #: Cells executed and uploaded over this worker's lifetime.
        self.cells_done = 0
        self.leases_served = 0

    def serve_one_lease(self, worker_id: str) -> bool:
        """Lease, execute, upload once; False when no work was pending."""
        lease = self.client.lease(worker_id, limit=self.lease_limit)
        if not lease.get("lease"):
            return False
        specs = specs_from_wire(lease["specs"])
        # No cache here: the server's cache is the store of record and
        # already filtered hits out at submit time.
        with scene_store_scope(self.scene_store), plan_store_scope(
            self.plan_store
        ):
            results = self.executor.run(specs)
        entries = [
            {"key": spec_key(spec), "payload": encode_entry(spec, result)}
            for spec, result in zip(specs, results)
        ]
        self.client.upload(
            worker_id,
            str(lease["job"]),
            entries,
            lease_id=str(lease["lease"]),
        )
        self.cells_done += len(entries)
        self.leases_served += 1
        return True

    def run_forever(
        self, should_stop: Optional[Callable[[], bool]] = None
    ) -> Dict[str, object]:
        """Pull work until told to stop, idled out, or orphaned.

        ``should_stop`` is polled between leases (tests pass an
        ``Event.is_set``); a :class:`CacheMergeError` on upload is
        fatal for the *job*, not the worker — the worker logs on via
        the next lease.
        """
        registration = self.client.register_worker(self.name)
        worker_id = str(registration["worker"])
        idle_since: Optional[float] = None
        failures = 0
        while not (should_stop is not None and should_stop()):
            try:
                worked = self.serve_one_lease(worker_id)
                failures = 0
            except CacheMergeError:
                # The server already marked the job errored; nothing
                # useful to retry, but other jobs may still need us.
                worked = False
            except ServiceError:
                failures += 1
                if failures >= self.retries:
                    break  # server went away: exit instead of spinning
                time.sleep(self.poll_interval)
                continue
            if worked:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if (
                self.max_idle is not None
                and now - idle_since >= self.max_idle
            ):
                break
            time.sleep(self.poll_interval)
        return {
            "worker": worker_id,
            "name": self.name,
            "cells_done": self.cells_done,
            "leases_served": self.leases_served,
        }
