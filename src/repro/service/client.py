"""Client side of the sweep service: HTTP wrapper + ``remote`` executor.

:class:`ServiceClient` is a thin JSON-over-HTTP wrapper (stdlib
``urllib``) around the daemon's endpoints.  :class:`RemoteExecutor`
builds on it to implement the :class:`~repro.session.executor.SweepExecutor`
protocol: ``Sweep.run(executor="remote")`` /
``oovr sweep --executor remote --server URL`` submits the grid to a
daemon, polls per-cell completion events, and returns results
**byte-identical** to the ``serial`` backend — the records decode from
the exact cache-entry payloads the service stores, through the same
:meth:`SceneResult.from_dict <repro.stats.metrics.SceneResult.from_dict>`
path a local cache hit takes.

The executor is registered under the name ``remote`` on the standard
:func:`~repro.session.executor.register_executor` hook; selecting it
by *name* resolves the daemon URL from the ``OOVR_SERVER`` environment
variable (``--server URL`` on the CLI constructs the instance
directly).
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.service.protocol import PROTOCOL_VERSION, specs_to_wire
from repro.session.cache import CacheMergeError, ResultCache, spec_key
from repro.session.executor import ExecutorError, ResultCallback, _lookup
from repro.session.spec import RunSpec
from repro.stats.metrics import SceneResult

#: Environment variable naming the daemon for ``--executor remote``.
SERVER_ENV = "OOVR_SERVER"


class ServiceError(RuntimeError):
    """The daemon rejected a request or is unreachable."""


class ServiceClient:
    """JSON-over-HTTP client for one ``oovr serve`` daemon."""

    def __init__(self, server: str, timeout: float = 30.0) -> None:
        if not server.startswith(("http://", "https://")):
            raise ServiceError(
                f"server URL must start with http:// or https://, "
                f"got {server!r}"
            )
        self.server = server.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = dict(body)
            payload.setdefault("version", PROTOCOL_VERSION)
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.server}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                document = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                document = {}
            message = document.get("error", str(error))
            if error.code == 409 or document.get("conflict"):
                raise CacheMergeError(message) from None
            raise ServiceError(
                f"{method} {path} -> {error.code}: {message}"
            ) from None
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise ServiceError(
                f"cannot reach sweep server at {self.server}: {error}"
            ) from None

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    def cache_status(self) -> Dict[str, object]:
        return self._request("GET", "/cache")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def submit(self, specs: Sequence[RunSpec]) -> Dict[str, object]:
        return self._request(
            "POST", "/sweeps", {"specs": specs_to_wire(specs)}
        )

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/sweeps/{job_id}")

    def events(self, job_id: str, since: int = 0) -> Dict[str, object]:
        return self._request(
            "GET", f"/sweeps/{job_id}/events?since={int(since)}"
        )

    def fetch(
        self, job_id: str, keys: Sequence[str]
    ) -> Dict[str, str]:
        document = self._request(
            "POST", f"/sweeps/{job_id}/results", {"keys": list(keys)}
        )
        return dict(document["results"])  # type: ignore[arg-type]

    def register_worker(self, name: str) -> Dict[str, object]:
        return self._request("POST", "/workers", {"name": name})

    def lease(self, worker_id: str, limit: int = 1) -> Dict[str, object]:
        return self._request(
            "POST", "/lease", {"worker": worker_id, "limit": int(limit)}
        )

    def upload(
        self,
        worker_id: str,
        job_id: str,
        entries: List[Dict[str, str]],
        lease_id: Optional[str] = None,
    ) -> Dict[str, object]:
        return self._request(
            "POST",
            "/upload",
            {
                "worker": worker_id,
                "job": job_id,
                "lease": lease_id,
                "entries": entries,
            },
        )


class RemoteExecutor:
    """Run a sweep's cells on an ``oovr serve`` daemon.

    The submit/poll/fetch counterpart of the in-process backends:
    local-cache hits resolve first (exactly like ``serial``), the
    misses are submitted as one job, completion events stream back,
    and ``on_result`` fires in grid order over the *whole* grid —
    progressively, as the completed prefix grows — so callers cannot
    tell the backends apart except by where the work ran.  Fetched
    entry payloads are folded into the local cache (when one is in
    play), so a remote sweep doubles as a cache warm.
    """

    name = "remote"

    def __init__(
        self,
        server: str,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
        client: Optional[ServiceClient] = None,
    ) -> None:
        self.client = client or ServiceClient(server)
        if poll_interval <= 0:
            raise ExecutorError("poll_interval must be positive")
        self.poll_interval = float(poll_interval)
        #: Overall deadline for one grid (None = wait indefinitely).
        self.timeout = timeout

    @classmethod
    def from_env(cls) -> "RemoteExecutor":
        """The instance ``executor="remote"`` (by name) resolves to."""
        server = os.environ.get(SERVER_ENV)
        if not server:
            raise ExecutorError(
                "the remote executor needs a server: pass --server URL "
                f"(CLI), set ${SERVER_ENV}, or construct "
                "RemoteExecutor(server_url) directly"
            )
        return cls(server)

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: Optional[ResultCache] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[SceneResult]]:
        specs = list(specs)
        results, hits = _lookup(specs, cache)
        fired = 0

        def fire_ready() -> None:
            """Advance the grid-order callback frontier."""
            nonlocal fired
            while fired < len(specs) and results[fired] is not None:
                if on_result is not None:
                    on_result(specs[fired], results[fired], hits[fired])
                fired += 1

        missing = [
            index for index, result in enumerate(results) if result is None
        ]
        if missing:
            # One key can cover several grid indices only if a caller
            # hands duplicate specs; the service stores one cell per
            # content address, so map key -> every index it fills.
            indices_by_key: Dict[str, List[int]] = {}
            for index in missing:
                indices_by_key.setdefault(
                    spec_key(specs[index]), []
                ).append(index)
            submitted = [
                specs[indices[0]] for indices in indices_by_key.values()
            ]
            job = self.client.submit(submitted)
            job_id = str(job["job"])
            deadline = (
                None if self.timeout is None
                else time.monotonic() + self.timeout
            )
            seq = 0
            while True:
                status = self.client.events(job_id, since=seq)
                seq = int(status["next"])  # type: ignore[arg-type]
                events = status["events"]  # type: ignore[assignment]
                if events:
                    payloads = self.client.fetch(
                        job_id, [str(event["key"]) for event in events]
                    )
                    for event in events:
                        key = str(event["key"])
                        payload = payloads[key]
                        entry = json.loads(payload)
                        result = SceneResult.from_dict(entry["result"])
                        if cache is not None:
                            # The authoritative bytes for this address
                            # just arrived; overwrite even a stale or
                            # corrupt local entry.
                            cache.merge_entry(
                                key, payload, on_conflict="replace"
                            )
                        for index in indices_by_key[key]:
                            results[index] = result
                            hits[index] = bool(event["cached"])
                    fire_ready()
                state = status["state"]
                if state == "error":
                    message = str(status.get("error"))
                    if "merge conflict" in message:
                        raise CacheMergeError(message)
                    raise ServiceError(
                        f"job {job_id} failed on the server: {message}"
                    )
                if state == "done" and all(
                    results[index] is not None for index in missing
                ):
                    break
                if deadline is not None and time.monotonic() > deadline:
                    raise ServiceError(
                        f"job {job_id} did not complete within "
                        f"{self.timeout:.0f}s ({status.get('done')}/"
                        f"{status.get('cells')} cells done — are any "
                        "workers connected to the server?)"
                    )
                time.sleep(self.poll_interval)
        fire_ready()
        return results
