"""Wire protocol of the sweep service: specs and results over JSON.

The service moves exactly two payload shapes between processes:

- a **spec document** — :func:`spec_to_wire` /
  :func:`spec_from_wire` round-trip a frozen
  :class:`~repro.session.spec.RunSpec` (including a full nested
  :class:`~repro.config.SystemConfig`) through plain JSON such that the
  reconstructed spec hashes to the *same* :func:`spec_key
  <repro.session.cache.spec_key>`.  That invariant is what makes the
  whole service content-addressed: a worker on another host stores its
  results under byte-for-byte the same cache keys the submitting client
  computed;

- a **cache entry payload** — the exact on-disk text
  :func:`repro.session.cache.encode_entry` produces, shipped verbatim.
  Workers upload entry text, the server merges it with
  :meth:`ResultCache.merge_entry
  <repro.session.cache.ResultCache.merge_entry>` semantics (identical
  payloads are no-ops, byte-level disagreement is a
  :class:`~repro.session.cache.CacheMergeError`), and clients decode
  records out of it with the same
  :meth:`SceneResult.from_dict
  <repro.stats.metrics.SceneResult.from_dict>` path a local cache hit
  takes — which is why a ``remote`` sweep exports records
  byte-identical to a ``serial`` one.

Nothing here opens a socket; :mod:`repro.service.server`,
:mod:`repro.service.worker` and :mod:`repro.service.client` share this
module as their single source of message truth.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.config import (
    CostModel,
    GPMConfig,
    LinkConfig,
    SMConfig,
    SystemConfig,
)
from repro.session.spec import RunSpec, SpecError

#: Bumped whenever a message shape changes; the server rejects clients
#: and workers speaking another version instead of mis-parsing them.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A message that does not parse as this protocol version."""


# ---------------------------------------------------------------------------
# SystemConfig: nested frozen dataclasses <-> plain JSON dicts
# ---------------------------------------------------------------------------


def config_to_wire(config: SystemConfig) -> Dict[str, object]:
    """``SystemConfig`` as the plain dict :func:`dataclasses.asdict`
    spells it — the same shape :func:`repro.session.cache.config_fingerprint`
    hashes, so wire and cache key agree on every field."""
    return dataclasses.asdict(config)


def config_from_wire(data: Mapping[str, object]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its :func:`config_to_wire`
    dict.

    Values are taken exactly as they arrive (JSON keeps ints ints and
    floats floats), so ``dataclasses.asdict`` of the result reproduces
    the input dict — the property :func:`spec_to_wire` round-tripping
    relies on.
    """
    try:
        fields = dict(data)
        gpm = dict(fields.pop("gpm"))  # type: ignore[arg-type]
        sm = SMConfig(**gpm.pop("sm"))  # type: ignore[arg-type]
        return SystemConfig(
            gpm=GPMConfig(sm=sm, **gpm),
            link=LinkConfig(**fields.pop("link")),  # type: ignore[arg-type]
            cost=CostModel(**fields.pop("cost")),  # type: ignore[arg-type]
            **fields,  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, AttributeError) as error:
        raise ProtocolError(f"bad config document: {error}") from None


# ---------------------------------------------------------------------------
# RunSpec <-> wire documents
# ---------------------------------------------------------------------------


def spec_to_wire(spec: RunSpec) -> Dict[str, object]:
    """One :class:`RunSpec` as a JSON-able document."""
    data: Dict[str, object] = {
        "framework": spec.framework,
        "workload": spec.workload,
        "num_frames": spec.num_frames,
        "seed": spec.seed,
        "draw_scale": spec.draw_scale,
        "config_label": spec.config_label,
    }
    if spec.engine is not None:
        data["engine"] = spec.engine
    if spec.config is not None:
        data["config"] = config_to_wire(spec.config)
    return data


def spec_from_wire(data: Mapping[str, object]) -> RunSpec:
    """Rebuild and validate a :class:`RunSpec` from its wire document.

    Raises :class:`ProtocolError` for structurally bad documents and
    lets :class:`~repro.session.spec.SpecError` through for documents
    that parse but name unknown frameworks/workloads/engines — the
    server maps both to a 400 response.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(f"spec document must be an object, got {data!r}")
    config = data.get("config")
    try:
        spec = RunSpec(
            framework=str(data["framework"]),
            workload=str(data["workload"]),
            config=None if config is None else config_from_wire(config),
            num_frames=int(data["num_frames"]),
            seed=int(data["seed"]),
            draw_scale=float(data["draw_scale"]),
            config_label=str(data.get("config_label", "base")),
            engine=(
                None if data.get("engine") is None else str(data["engine"])
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, (SpecError, ProtocolError)):
            raise
        raise ProtocolError(f"bad spec document: {error}") from None
    return spec.validate()


def specs_to_wire(specs: Sequence[RunSpec]) -> List[Dict[str, object]]:
    return [spec_to_wire(spec) for spec in specs]


def specs_from_wire(
    documents: object,
) -> List[RunSpec]:
    if not isinstance(documents, (list, tuple)) or not documents:
        raise ProtocolError(
            "'specs' must be a non-empty list of spec documents"
        )
    return [spec_from_wire(document) for document in documents]


def check_version(data: Mapping[str, object], what: str) -> None:
    """Reject messages from another protocol version outright."""
    version = data.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{what} speaks protocol version {version!r}; "
            f"this side speaks {PROTOCOL_VERSION}"
        )


def entry_documents(data: Mapping[str, object]) -> List[Dict[str, object]]:
    """Validate an upload's ``entries`` list: ``{"key", "payload"}``."""
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ProtocolError("'entries' must be a non-empty list")
    for entry in entries:
        if (
            not isinstance(entry, Mapping)
            or not isinstance(entry.get("key"), str)
            or not isinstance(entry.get("payload"), str)
        ):
            raise ProtocolError(
                "each entry must be {'key': hex, 'payload': text}"
            )
    return entries  # type: ignore[return-value]


#: The default TCP port ``oovr serve`` listens on (0 = OS-assigned).
DEFAULT_PORT = 8765
