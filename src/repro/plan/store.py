"""Persistent compiled work-plan artifact store.

With the compiled-scene store (:mod:`repro.scene.store`) taking the
scene wall off disk-warm runs, the dominant remaining per-point cost is
the *work plan*: Eq. 3 frame characterisation
(:meth:`DrawCharacterizer.characterize_frame
<repro.pipeline.characterize.DrawCharacterizer.characterize_frame>`)
and the middleware's TSL batch grouping plus merges
(``_BatchBuilder.build`` in :mod:`repro.core.oovr`).  The per-process
reuse memo (:mod:`repro.reuse`) amortises both *within* one process,
but every worker of a ``--jobs N`` sweep and every ``oovr worker`` of a
service fleet re-characterises every (workload, cost config) point
cold.  This module makes the compiled plan a first-class on-disk
artifact, in the exact idiom of the scene store:

- **Key contract**: entries are addressed by a SHA-256 over the
  canonical JSON of ``(store_version, plan_version, kind, scene
  content key, cost fingerprint, plan knobs)``.  The *scene content
  key* is :func:`repro.scene.store.scene_key` plus the frame id —
  stamped onto every frame by :func:`~repro.session.spec.cached_scene`,
  so frames from trace replays or hand-built scenes (no stamp) simply
  bypass the store.  The *cost fingerprint* is a SHA-256 over the
  canonical JSON of the frozen :class:`~repro.config.CostModel`, so
  frameworks sharing a cost model (the common case: variants differ in
  link/topology knobs, never in pipeline costs) share entries — the
  cross-framework dedup.  ``PLAN_VERSION`` is the version of the
  *characterisation output*: any change to the pricing or grouping
  maths that moves numbers must bump it; old entries then stop
  matching their key and degrade to a rebuild-and-rewrite, never to
  silently stale numbers.  (A change to scene *generation* bumps
  ``GENERATOR_VERSION`` instead, which re-keys the scene content key
  and with it every plan entry.)
- **Format**: one ``.plan`` file per entry — an ``OOVRPLN1`` magic, a
  canonical JSON header (entry metadata and an array directory), then
  the plan's struct-of-array columns as raw little-endian buffers at
  64-byte-aligned offsets.  Serialisation is byte-deterministic, so
  concurrent writers racing on one key write identical bytes and the
  ``os.replace`` rename makes the last one win harmlessly.  Two entry
  kinds share the container: ``"frame"`` holds the
  :class:`~repro.pipeline.batch.FrameCounters` columns of one draw
  expansion; ``"group"`` holds a TSL batch grouping — CSR member rows
  plus the merged work units' scalar and touch columns.
- **Load path**: entries are ``mmap``-ed read-only and the counter
  columns are zero-copy ``np.frombuffer`` views.  A ``"frame"`` hit
  re-materialises work units through the *same*
  :func:`~repro.pipeline.batch.work_units_from_counters` walk the
  build path uses (float64 round-trips are exact, so units are
  field-for-field identical); a ``"group"`` hit rebuilds the
  ``(Batch, merged WorkUnit)`` pairs directly from the frame's live
  objects, skipping the Fig. 12 grouping scan, the characterisation
  and the merges outright.  Loading happens *inside* the reuse-memo
  hook sites, so a store hit populates the same identity-anchored memo
  the in-process build would have.  Corrupt, truncated or
  version/key-mismatched entries count as corrupt misses and degrade
  to rebuild-and-rewrite.

The *active* store is module state scoped exactly like the scene
store's: :func:`plan_store_scope` for sessions and sweeps,
:func:`set_plan_store` for process-pool initialisers and service
workers, :func:`active_plan_store` for the hook sites.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.config import CostModel
from repro.core.middleware import Batch
from repro.memory.address import Touch, texture_resource, vertex_resource
from repro.pipeline.batch import EYE_BOTH, EYE_LEFT, EYE_RIGHT, FrameCounters
from repro.pipeline.smp import SMPMode
from repro.pipeline.workunit import WorkUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scene.scene import Frame

__all__ = [
    "PLAN_VERSION",
    "PlanStore",
    "PlanStoreStats",
    "active_plan_store",
    "cost_fingerprint",
    "frame_plan_key",
    "group_plan_key",
    "plan_content_key",
    "plan_store_scope",
    "set_plan_store",
]

#: File magic of a compiled-plan entry.
MAGIC = b"OOVRPLN1"
#: Version of the on-disk container layout (not of plan content).
STORE_VERSION = 1
#: Version of the characterisation/grouping *output*.  Bump whenever
#: the pricing maths (Eq. 3, fragment demand, touch weighting) or the
#: grouping/merge semantics change the numbers they produce.
PLAN_VERSION = 1
#: Data buffers start on this alignment, large enough for any dtype
#: and friendly to mmap page reuse.
ALIGNMENT = 64

#: The attribute :func:`~repro.session.spec.cached_scene` stamps onto
#: every frame of a store-keyable scene.  Frames without it (trace
#: replays, hand-built scenes) make the plan store inert for them.
CONTENT_KEY_ATTR = "plan_content_key"

#: The :class:`FrameCounters` array columns persisted verbatim, in
#: directory order (``expansion``/``mode`` travel in the header).
_COUNTER_COLUMNS = (
    "obj_index",
    "eye_codes",
    "views",
    "vertices",
    "triangles_setup",
    "triangles_raster",
    "fragments",
    "pixels_out",
    "texel_requests",
    "z_stream_bytes",
    "z_unique_bytes",
    "fb_write_bytes",
    "vertex_stream_bytes",
    "touch_offsets",
    "touch_tex_ids",
    "touch_tex_sizes",
    "touch_unique_bytes",
    "touch_stream_bytes",
    "empty_touches",
)

#: Merged-unit scalar columns of a ``"group"`` entry, one value per
#: batch, float64 unless noted.
_UNIT_SCALAR_COLUMNS = (
    "unit_views",  # int64
    "unit_vertices",
    "unit_triangles_setup",
    "unit_triangles_raster",
    "unit_fragments",
    "unit_pixels_out",
    "unit_texel_requests",
    "unit_shader_complexity",
    "unit_z_stream_bytes",
    "unit_z_unique_bytes",
    "unit_fb_write_bytes",
    "unit_command_bytes",
    "unit_draw_count",
)


def plan_content_key(frame: "Frame") -> Optional[str]:
    """``frame``'s stamped scene-content key, or ``None`` when the
    frame did not come through :func:`~repro.session.spec.cached_scene`
    (the plan store is inert for such frames)."""
    return getattr(frame, CONTENT_KEY_ATTR, None)


@lru_cache(maxsize=256)
def cost_fingerprint(cost: CostModel) -> str:
    """The content address of a cost model's pricing maths inputs.

    SHA-256 over the canonical JSON of the frozen dataclass's fields.
    Frameworks whose configs share a cost model therefore share plan
    entries, whatever their link/topology/placement knobs — the
    cross-framework dedup of the store.
    """
    canonical = json.dumps(asdict(cost), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _key_of(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def frame_plan_key(
    content_key: str, cost_fp: str, mode: SMPMode, expansion: str
) -> str:
    """The content address of one frame's characterised draw expansion."""
    return _key_of(
        {
            "store_version": STORE_VERSION,
            "plan_version": PLAN_VERSION,
            "kind": "frame",
            "scene": content_key,
            "cost": cost_fp,
            "mode": mode.name,
            "expansion": expansion,
        }
    )


def group_plan_key(
    content_key: str, cost_fp: str, triangle_limit: int, tsl_threshold: float
) -> str:
    """The content address of one frame's TSL batch grouping.

    The grouping always characterises the SIMULTANEOUS/multiview
    expansion, so only the middleware knobs join the key.
    """
    return _key_of(
        {
            "store_version": STORE_VERSION,
            "plan_version": PLAN_VERSION,
            "kind": "group",
            "scene": content_key,
            "cost": cost_fp,
            "triangle_limit": int(triangle_limit),
            "tsl_threshold": float(tsl_threshold),
        }
    )


@dataclass
class PlanStoreStats:
    """Hit/miss accounting for one :class:`PlanStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


class PlanStore:
    """Content-addressed on-disk cache of compiled work plans.

    See the module docstring for the key contract and file format.
    The ``get_*`` methods never raise on a bad entry: unreadable,
    truncated, or version/key-mismatched files count as
    ``stats.corrupt`` misses and the hook sites rebuild and rewrite
    them.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = PlanStoreStats()

    # -- paths ----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.plan"

    def entry_paths(self) -> List[Path]:
        return sorted(self.root.glob("*.plan"))

    # -- store ----------------------------------------------------------

    def _write_atomic(self, key: str, payload: bytes) -> Path:
        """Write ``payload`` under ``key`` via unique temp + replace.

        Byte-deterministic serialisation makes the race benign: two
        processes compiling the same plan write identical files, so the
        last rename wins harmlessly and a crash can at worst leave a
        ``.tmp`` file behind, never a partial entry.
        """
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="wb",
            dir=self.root,
            prefix=f".{key[:16]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            handle.write(payload)
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def put_frame(
        self,
        content_key: str,
        cost_fp: str,
        mode: SMPMode,
        expansion: str,
        counters: FrameCounters,
    ) -> Path:
        """Persist one frame's characterised counter columns."""
        key = frame_plan_key(content_key, cost_fp, mode, expansion)
        meta = {
            "store_version": STORE_VERSION,
            "plan_version": PLAN_VERSION,
            "key": key,
            "kind": "frame",
            "scene": content_key,
            "cost": cost_fp,
            "mode": mode.name,
            "expansion": expansion,
            "num_draws": len(counters),
        }
        arrays = [
            (name, np.ascontiguousarray(getattr(counters, name)))
            for name in _COUNTER_COLUMNS
        ]
        return self._write_atomic(key, _serialise_entry(meta, arrays))

    def put_group(
        self,
        content_key: str,
        cost_fp: str,
        triangle_limit: int,
        tsl_threshold: float,
        frame: "Frame",
        pairs: Tuple[Tuple[Batch, WorkUnit], ...],
    ) -> Path:
        """Persist one frame's TSL grouping and merged units."""
        key = group_plan_key(content_key, cost_fp, triangle_limit, tsl_threshold)
        meta = {
            "store_version": STORE_VERSION,
            "plan_version": PLAN_VERSION,
            "key": key,
            "kind": "group",
            "scene": content_key,
            "cost": cost_fp,
            "triangle_limit": int(triangle_limit),
            "tsl_threshold": float(tsl_threshold),
            "num_batches": len(pairs),
        }
        arrays = _group_columns(frame, pairs)
        return self._write_atomic(key, _serialise_entry(meta, arrays))

    # -- load -----------------------------------------------------------

    def _load(self, key: str) -> Optional[Tuple[dict, Dict[str, np.ndarray]]]:
        """The parsed entry for ``key``, or ``None`` (stats updated)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                buffer = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        try:
            return _parse_entry(buffer, expected_key=key)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None

    def get_frame(
        self, content_key: str, cost_fp: str, mode: SMPMode, expansion: str
    ) -> Optional[FrameCounters]:
        """The stored counter columns for one expansion, or ``None``.

        Corrupt or stale entries (bad magic, truncation, version or key
        mismatch, inconsistent columns) count in ``stats.corrupt`` and
        read as a miss — the hook site rebuilds and overwrites.
        """
        key = frame_plan_key(content_key, cost_fp, mode, expansion)
        loaded = self._load(key)
        if loaded is None:
            return None
        header, arrays = loaded
        try:
            counters = _materialise_counters(header, arrays, mode, expansion)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return counters

    def get_group(
        self,
        content_key: str,
        cost_fp: str,
        triangle_limit: int,
        tsl_threshold: float,
        frame: "Frame",
    ) -> Optional[Tuple[Tuple[Batch, WorkUnit], ...]]:
        """The stored ``(Batch, merged unit)`` pairs, or ``None``.

        The batches are rebuilt against ``frame``'s live objects, so a
        hit carries the same object identities (and viewport objects)
        the in-process build would have produced.
        """
        key = group_plan_key(content_key, cost_fp, triangle_limit, tsl_threshold)
        loaded = self._load(key)
        if loaded is None:
            return None
        header, arrays = loaded
        try:
            pairs = _materialise_group(header, arrays, frame)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return pairs

    # -- maintenance -----------------------------------------------------

    def info(self) -> dict:
        """Inventory of the store, shaped for ``oovr plan info``."""
        plans = []
        total_bytes = 0
        corrupt = 0
        for path in self.entry_paths():
            size = path.stat().st_size
            total_bytes += size
            header = _read_header(path)
            if header is None:
                corrupt += 1
                plans.append({"file": path.name, "bytes": size, "corrupt": True})
                continue
            entry = {
                "key": header["key"],
                "kind": header["kind"],
                "scene": header["scene"],
                "cost": header["cost"],
                "plan_version": header["plan_version"],
                "bytes": size,
            }
            if header["kind"] == "frame":
                entry["mode"] = header["mode"]
                entry["expansion"] = header["expansion"]
                entry["num_draws"] = header["num_draws"]
            else:
                entry["triangle_limit"] = header["triangle_limit"]
                entry["tsl_threshold"] = header["tsl_threshold"]
                entry["num_batches"] = header["num_batches"]
            plans.append(entry)
        return {
            "root": str(self.root),
            "entries": len(plans),
            "corrupt": corrupt,
            "total_bytes": total_bytes,
            "plans": plans,
            "stats": self.stats.as_dict(),
        }

    def clear(self) -> int:
        """Delete every entry (and stray temp file); return the count."""
        removed = 0
        for path in self.entry_paths():
            path.unlink()
            removed += 1
        for stray in self.root.glob(".*.tmp"):
            stray.unlink()
        return removed


# -- serialisation -------------------------------------------------------


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _serialise_entry(
    meta: dict, arrays: List[Tuple[str, np.ndarray]]
) -> bytes:
    """The byte-deterministic single-file container for one entry."""
    directory: List[dict] = []
    blobs: List[bytes] = []
    offset = 0
    for name, array in arrays:
        array = np.ascontiguousarray(array)
        blob = array.tobytes()
        offset = _align(offset)
        directory.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "count": int(array.size),
                "offset": offset,
            }
        )
        blobs.append(blob)
        offset += len(blob)

    header = dict(meta)
    header["arrays"] = directory
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")

    data_start = _align(len(MAGIC) + 8 + len(header_bytes))
    parts = [MAGIC, len(header_bytes).to_bytes(8, "little"), header_bytes]
    written = len(MAGIC) + 8 + len(header_bytes)
    for entry, blob in zip(directory, blobs):
        absolute = data_start + entry["offset"]
        parts.append(b"\x00" * (absolute - written))
        parts.append(blob)
        written = absolute + len(blob)
    return b"".join(parts)


def _read_header(path: Path) -> Optional[dict]:
    """The parsed + validated header of an entry, or ``None`` if bad."""
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                return None
            header_len = int.from_bytes(fh.read(8), "little")
            if not 0 < header_len <= 64 * 1024 * 1024:
                return None
            header = json.loads(fh.read(header_len).decode("utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if header.get("store_version") != STORE_VERSION:
        return None
    return header


def _parse_entry(
    buffer: mmap.mmap, expected_key: str
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Header + zero-copy array views of an mmap-ed entry.

    Raises on any inconsistency; :meth:`PlanStore._load` maps that to a
    corrupt miss.
    """
    if buffer[: len(MAGIC)] != MAGIC:
        raise ValueError("bad magic")
    header_len = int.from_bytes(buffer[len(MAGIC) : len(MAGIC) + 8], "little")
    header_start = len(MAGIC) + 8
    header = json.loads(
        buffer[header_start : header_start + header_len].decode("utf-8")
    )
    if header["store_version"] != STORE_VERSION:
        raise ValueError("store version mismatch")
    if header["plan_version"] != PLAN_VERSION:
        raise ValueError("plan version mismatch")
    if header["key"] != expected_key:
        raise ValueError("key mismatch")
    data_start = _align(header_start + header_len)

    arrays: Dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        start = data_start + entry["offset"]
        end = start + entry["count"] * dtype.itemsize
        if end > len(buffer):
            raise ValueError("truncated entry")
        arrays[entry["name"]] = np.frombuffer(
            buffer, dtype=dtype, count=entry["count"], offset=start
        )
    return header, arrays


def _materialise_counters(
    header: dict,
    arrays: Dict[str, np.ndarray],
    mode: SMPMode,
    expansion: str,
) -> FrameCounters:
    """Rebuild :class:`FrameCounters` from an entry's array views."""
    if header["kind"] != "frame":
        raise ValueError("not a frame entry")
    if header["mode"] != mode.name or header["expansion"] != expansion:
        raise ValueError("expansion mismatch")
    columns = {name: arrays[name] for name in _COUNTER_COLUMNS}
    num_draws = int(header["num_draws"])
    if len(columns["obj_index"]) != num_draws:
        raise ValueError("draw count mismatch")
    if len(columns["touch_offsets"]) != num_draws + 1:
        raise ValueError("touch CSR length mismatch")
    nnz = int(columns["touch_offsets"][-1]) if num_draws else 0
    for name in (
        "touch_tex_ids",
        "touch_tex_sizes",
        "touch_unique_bytes",
        "touch_stream_bytes",
    ):
        if len(columns[name]) != nnz:
            raise ValueError("touch column length mismatch")
    return FrameCounters(expansion=expansion, mode=mode, **columns)


def _group_columns(
    frame: "Frame", pairs: Tuple[Tuple[Batch, WorkUnit], ...]
) -> List[Tuple[str, np.ndarray]]:
    """Gather a grouping's persistable columns from built pairs."""
    row_of = {obj.object_id: i for i, obj in enumerate(frame.objects)}

    batch_offsets = [0]
    member_rows: List[int] = []
    member_eye_codes: List[int] = []
    vertex_unique: List[float] = []
    vertex_stream: List[float] = []
    tex_offsets = [0]
    tex_ids: List[int] = []
    tex_sizes: List[int] = []
    tex_unique: List[float] = []
    tex_stream: List[float] = []
    tex_write: List[float] = []
    scalars: Dict[str, List[float]] = {
        name: [] for name in _UNIT_SCALAR_COLUMNS
    }

    for batch, unit in pairs:
        for obj in batch.objects:
            member_rows.append(row_of[obj.object_id])
            if obj.viewport_left is not None and obj.viewport_right is not None:
                member_eye_codes.append(EYE_BOTH)
            elif obj.viewport_left is not None:
                member_eye_codes.append(EYE_LEFT)
            else:
                member_eye_codes.append(EYE_RIGHT)
        batch_offsets.append(len(member_rows))
        for touch in unit.vertex_touches:
            vertex_unique.append(touch.unique_bytes)
            vertex_stream.append(touch.stream_bytes)
        for touch in unit.texture_touches:
            tex_ids.append(touch.resource.resource_id[1])
            tex_sizes.append(touch.resource.size_bytes)
            tex_unique.append(touch.unique_bytes)
            tex_stream.append(touch.stream_bytes)
            tex_write.append(touch.write_bytes)
        tex_offsets.append(len(tex_ids))
        scalars["unit_views"].append(unit.views)
        scalars["unit_vertices"].append(unit.vertices)
        scalars["unit_triangles_setup"].append(unit.triangles_setup)
        scalars["unit_triangles_raster"].append(unit.triangles_raster)
        scalars["unit_fragments"].append(unit.fragments)
        scalars["unit_pixels_out"].append(unit.pixels_out)
        scalars["unit_texel_requests"].append(unit.texel_requests)
        scalars["unit_shader_complexity"].append(unit.shader_complexity)
        scalars["unit_z_stream_bytes"].append(unit.z_stream_bytes)
        scalars["unit_z_unique_bytes"].append(unit.z_unique_bytes)
        scalars["unit_fb_write_bytes"].append(unit.fb_write_bytes)
        scalars["unit_command_bytes"].append(unit.command_bytes)
        scalars["unit_draw_count"].append(unit.draw_count)

    arrays: List[Tuple[str, np.ndarray]] = [
        ("batch_offsets", np.asarray(batch_offsets, dtype=np.int64)),
        ("member_rows", np.asarray(member_rows, dtype=np.int64)),
        ("member_eye_codes", np.asarray(member_eye_codes, dtype=np.int64)),
        ("vertex_unique", np.asarray(vertex_unique, dtype=np.float64)),
        ("vertex_stream", np.asarray(vertex_stream, dtype=np.float64)),
        ("tex_offsets", np.asarray(tex_offsets, dtype=np.int64)),
        ("tex_ids", np.asarray(tex_ids, dtype=np.int64)),
        ("tex_sizes", np.asarray(tex_sizes, dtype=np.int64)),
        ("tex_unique", np.asarray(tex_unique, dtype=np.float64)),
        ("tex_stream", np.asarray(tex_stream, dtype=np.float64)),
        ("tex_write", np.asarray(tex_write, dtype=np.float64)),
    ]
    for name in _UNIT_SCALAR_COLUMNS:
        dtype = np.int64 if name == "unit_views" else np.float64
        arrays.append((name, np.asarray(scalars[name], dtype=dtype)))
    return arrays


def _materialise_group(
    header: dict, arrays: Dict[str, np.ndarray], frame: "Frame"
) -> Tuple[Tuple[Batch, WorkUnit], ...]:
    """Rebuild ``(Batch, merged unit)`` pairs against live frame objects.

    Raises on any inconsistency; :meth:`PlanStore.get_group` maps that
    to a corrupt miss.  Every float comes back from its stored float64
    verbatim, and batches/viewports are rebuilt from the frame's own
    objects, so the pairs are field-for-field identical to what
    ``_BatchBuilder._build`` produces in process.
    """
    if header["kind"] != "group":
        raise ValueError("not a group entry")
    objects = frame.objects
    num_batches = int(header["num_batches"])
    batch_offsets = arrays["batch_offsets"].tolist()
    member_rows = arrays["member_rows"].tolist()
    eye_codes = arrays["member_eye_codes"].tolist()
    v_unique = arrays["vertex_unique"].tolist()
    v_stream = arrays["vertex_stream"].tolist()
    tex_offsets = arrays["tex_offsets"].tolist()
    tex_ids = arrays["tex_ids"].tolist()
    tex_sizes = arrays["tex_sizes"].tolist()
    tex_unique = arrays["tex_unique"].tolist()
    tex_stream = arrays["tex_stream"].tolist()
    tex_write = arrays["tex_write"].tolist()
    scalars = {
        name: arrays[name].tolist() for name in _UNIT_SCALAR_COLUMNS
    }
    if len(batch_offsets) != num_batches + 1:
        raise ValueError("batch CSR length mismatch")
    if len(tex_offsets) != num_batches + 1:
        raise ValueError("touch CSR length mismatch")
    if batch_offsets[-1] != len(member_rows):
        raise ValueError("member row count mismatch")
    if any(len(scalars[name]) != num_batches for name in _UNIT_SCALAR_COLUMNS):
        raise ValueError("scalar column length mismatch")
    if any(row < 0 or row >= len(objects) for row in member_rows):
        raise ValueError("member row out of range")

    pairs: List[Tuple[Batch, WorkUnit]] = []
    for b in range(num_batches):
        lo, hi = batch_offsets[b], batch_offsets[b + 1]
        members = tuple(objects[row] for row in member_rows[lo:hi])
        batch = Batch(batch_id=b, objects=members)
        texture_touches = tuple(
            Touch(
                resource=texture_resource(tex_ids[k], tex_sizes[k]),
                unique_bytes=tex_unique[k],
                stream_bytes=tex_stream[k],
                write_bytes=tex_write[k],
            )
            for k in range(tex_offsets[b], tex_offsets[b + 1])
        )
        vertex_touches = []
        viewports: List = []
        for i in range(lo, hi):
            obj = objects[member_rows[i]]
            vertex_touches.append(
                Touch(
                    resource=vertex_resource(
                        obj.object_id, max(1, obj.mesh.vertex_buffer_bytes)
                    ),
                    unique_bytes=v_unique[i],
                    stream_bytes=v_stream[i],
                )
            )
            code = eye_codes[i]
            if code == EYE_BOTH:
                viewports.extend((obj.viewport_left, obj.viewport_right))
            elif code == EYE_LEFT:
                viewports.append(obj.viewport_left)
            else:
                viewports.append(obj.viewport_right)
        unit = WorkUnit(
            label=f"batch{b}",
            views=int(scalars["unit_views"][b]),
            vertices=scalars["unit_vertices"][b],
            triangles_setup=scalars["unit_triangles_setup"][b],
            triangles_raster=scalars["unit_triangles_raster"][b],
            fragments=scalars["unit_fragments"][b],
            pixels_out=scalars["unit_pixels_out"][b],
            texel_requests=scalars["unit_texel_requests"][b],
            shader_complexity=scalars["unit_shader_complexity"][b],
            texture_touches=texture_touches,
            vertex_touches=tuple(vertex_touches),
            z_stream_bytes=scalars["unit_z_stream_bytes"][b],
            z_unique_bytes=scalars["unit_z_unique_bytes"][b],
            fb_write_bytes=scalars["unit_fb_write_bytes"][b],
            command_bytes=scalars["unit_command_bytes"][b],
            viewports=tuple(viewports),
            draw_count=scalars["unit_draw_count"][b],
        )
        pairs.append((batch, unit))
    return tuple(pairs)


# -- the active store (scoped like the scene store's) --------------------

_active_store: Optional[PlanStore] = None

StoreLike = Union[PlanStore, str, Path, None]


def _coerce(store: StoreLike) -> Optional[PlanStore]:
    if store is None or isinstance(store, PlanStore):
        return store
    return PlanStore(store)


def active_plan_store() -> Optional[PlanStore]:
    """The store the hook sites consult, or ``None`` when disabled."""
    return _active_store


def set_plan_store(store: StoreLike) -> Optional[PlanStore]:
    """Set the process's active store (pass ``None`` to disable).

    Accepts a :class:`PlanStore` or a root path; used directly by
    process-pool initialisers and service workers, where a path string
    is what survives pickling.  Returns the active store.
    """
    global _active_store
    _active_store = _coerce(store)
    return _active_store


@contextmanager
def plan_store_scope(store: StoreLike) -> Iterator[Optional[PlanStore]]:
    """Scoped :func:`set_plan_store`, restoring the previous store.

    ``None`` (the default of every ``run(plan_store=...)``) leaves the
    ambient store untouched rather than disabling it, so a process-wide
    :func:`set_plan_store` keeps applying to runs that did not name
    one; use :func:`set_plan_store(None) <set_plan_store>` to disable
    explicitly.
    """
    global _active_store
    if store is None:
        yield _active_store
        return
    previous = _active_store
    _active_store = _coerce(store)
    try:
        yield _active_store
    finally:
        _active_store = previous
