"""Persistent compiled work-plan artifacts (:mod:`repro.plan.store`)."""

from repro.plan.store import (
    PLAN_VERSION,
    PlanStore,
    PlanStoreStats,
    active_plan_store,
    cost_fingerprint,
    frame_plan_key,
    group_plan_key,
    plan_store_scope,
    set_plan_store,
)

__all__ = [
    "PLAN_VERSION",
    "PlanStore",
    "PlanStoreStats",
    "active_plan_store",
    "cost_fingerprint",
    "frame_plan_key",
    "group_plan_key",
    "plan_store_scope",
    "set_plan_store",
]
