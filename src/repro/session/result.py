"""Structured results of a sweep: tidy records plus paper-style math.

A :class:`ResultSet` pairs every executed :class:`~repro.session.spec.RunSpec`
with its :class:`~repro.stats.metrics.SceneResult` and offers the
operations the paper's figures are made of: pivoting a metric into
(row, column) series, normalising one column against a baseline
(speedups, traffic ratios), geometric means per group, and export to
tidy records / JSON / CSV.  Exports share the
:meth:`SceneResult.to_dict` serialisation path used by ``oovr run
--json``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.memory.link import TrafficType
from repro.profiling import PhaseProfile
from repro.session.spec import RECORD_FIELDS, RunSpec
from repro.stats.metrics import SceneResult, geomean

GroupKey = Union[str, Tuple[str, ...]]


class ResultSet:
    """Ordered (spec, result) pairs from one sweep.

    ``profiles`` (from ``Sweep.run(profile=True)``) attaches one
    :class:`~repro.profiling.PhaseProfile` per run, aligned by index;
    derived sets (``select``, ``merge``) drop them — phase timings
    describe one particular execution, not the cell's identity.
    """

    def __init__(
        self,
        runs: Sequence[Tuple[RunSpec, SceneResult]],
        profiles: Optional[Sequence[PhaseProfile]] = None,
    ) -> None:
        self._runs: List[Tuple[RunSpec, SceneResult]] = list(runs)
        if profiles is not None and len(profiles) != len(self._runs):
            raise ValueError(
                f"got {len(profiles)} profiles for {len(self._runs)} runs"
            )
        #: Per-run phase profiles, or ``None`` when not profiled.
        self.profiles: Optional[List[PhaseProfile]] = (
            list(profiles) if profiles is not None else None
        )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[Tuple[RunSpec, SceneResult]]:
        return iter(self._runs)

    @property
    def specs(self) -> List[RunSpec]:
        return [spec for spec, _ in self._runs]

    @property
    def results(self) -> List[SceneResult]:
        return [result for _, result in self._runs]

    # -- composition --------------------------------------------------------

    def merge(self, other: "ResultSet") -> "ResultSet":
        """This set and ``other`` as one set; duplicate cells rejected.

        The in-process gather half of a sharded sweep: each shard's
        owned slice concatenates in argument order.  Two runs of the
        *same* cell (equal :func:`spec_key
        <repro.session.cache.spec_key>` content addresses — e.g. two
        shards misconfigured with the same index) raise instead of
        silently double-counting a cell in geomeans and pivots.
        """
        from repro.session.cache import spec_key

        seen = {spec_key(spec) for spec, _ in self._runs}
        for spec, _ in other:
            key = spec_key(spec)
            if key in seen:
                raise ValueError(
                    f"duplicate cell in ResultSet.merge: framework="
                    f"{spec.framework!r} workload={spec.workload!r} "
                    f"config_label={spec.config_label!r} (spec_key "
                    f"{key[:12]}…) is already present; shards of one "
                    "grid must be disjoint"
                )
            seen.add(key)
        return ResultSet([*self._runs, *other._runs])

    # -- selection ----------------------------------------------------------

    def select(self, **where: object) -> "ResultSet":
        """The subset whose record fields equal every ``where`` item.

        ``where`` keys must be real spec identity columns (plus
        ``engine``) — a typo like ``framwork="oo-vr"`` raises instead
        of silently matching nothing.
        """
        valid = (*RECORD_FIELDS, "engine")
        unknown = sorted(key for key in where if key not in valid)
        if unknown:
            raise KeyError(
                f"unknown record field(s) {unknown}; "
                f"valid fields: {list(valid)}"
            )
        kept = [
            (spec, result)
            for spec, result in self._runs
            if all(
                (
                    spec.effective_engine
                    if key == "engine"
                    else spec.record_fields()[key]
                )
                == value
                for key, value in where.items()
            )
        ]
        return ResultSet(kept)

    def get(self, **where: object) -> SceneResult:
        """The single result matching ``where`` (error if not exactly one)."""
        subset = self.select(**where)
        if len(subset) != 1:
            raise KeyError(
                f"expected exactly one result for {where}, got {len(subset)}"
            )
        return subset.results[0]

    def by_workload(self, **where: object) -> Dict[str, SceneResult]:
        """Workload -> result mapping (the legacy suite-run shape).

        The mapping is only well-defined when each workload appears
        once in the subset; spanning several frameworks or config
        labels raises instead of silently keeping the last run.
        """
        subset = self.select(**where) if where else self
        out: Dict[str, SceneResult] = {}
        for spec, result in subset:
            if spec.workload in out:
                frameworks = sorted({s.framework for s in subset.specs})
                configs = sorted({s.config_label for s in subset.specs})
                raise ValueError(
                    f"by_workload({where or ''}) is ambiguous: workload "
                    f"{spec.workload!r} appears more than once (frameworks "
                    f"{frameworks}, configs {configs}); narrow the subset "
                    "with select() keys"
                )
            out[spec.workload] = result
        return out

    # -- tidy records -------------------------------------------------------

    def to_records(self) -> List[Dict[str, object]]:
        """One flat dict per run: spec identity + scene summary metrics.

        Traffic is flattened into one ``traffic_<type>`` column per
        :class:`TrafficType` so every record has identical keys.  An
        ``engine`` column is added as soon as *any* run in the set was
        priced by a non-default engine, so mixed-engine sweeps keep
        their provenance while default sweeps export byte-identically
        to the pre-engine layout.  Likewise ``profile_<phase>_s``
        wall-time columns — and ``profile_<counter>`` quantity columns
        such as the event engine's window-loop statistics — appear only
        on profiled sets, so unprofiled exports never change shape.
        """
        include_engine = any(
            spec.effective_engine != "analytic" for spec, _ in self._runs
        )
        # Counter columns must be uniform across the set (CSV export
        # takes its header from the first record), so emit the union of
        # every profile's counters on all records, defaulting to 0.0.
        counter_names: List[str] = []
        if self.profiles is not None:
            counter_names = sorted(
                {
                    name
                    for profile in self.profiles
                    for name in profile.counters
                }
            )
        records: List[Dict[str, object]] = []
        for index, (spec, result) in enumerate(self._runs):
            summary = result.to_dict(include_frames=False)
            traffic = summary.pop("traffic")
            record = spec.record_fields()
            if include_engine:
                record["engine"] = spec.effective_engine
            for key, value in summary.items():
                if key not in record:  # spec identity wins on overlap
                    record[key] = value
            for traffic_type in TrafficType:
                record[f"traffic_{traffic_type.value}"] = traffic.get(
                    traffic_type.value, 0.0
                )
            if self.profiles is not None:
                for name, seconds in self.profiles[index].to_dict().items():
                    record[f"profile_{name}_s"] = seconds
                # Non-time counters (the event engine's window-loop
                # statistics) ride along without the ``_s`` suffix —
                # they are quantities, not wall seconds.
                for name in counter_names:
                    record[f"profile_{name}"] = (
                        self.profiles[index].counters.get(name, 0.0)
                    )
            records.append(record)
        return records

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """The records as a JSON array; optionally written to ``path``."""
        text = json.dumps(self.to_records(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def to_csv(self, path: Optional[str] = None) -> str:
        """The records as CSV with a deterministic column order."""
        records = self.to_records()
        if not records:
            return ""
        columns = list(records[0])
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        writer.writerows(records)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    # -- figure math --------------------------------------------------------

    def _group_key(self, record: Dict[str, object], by: GroupKey):
        if isinstance(by, tuple):
            return tuple(record[field] for field in by)
        return record[by]

    def pivot(
        self,
        metric: str,
        rows: str = "workload",
        cols: str = "framework",
    ) -> Dict[object, Dict[object, float]]:
        """``{col: {row: metric}}`` series, in run order."""
        out: Dict[object, Dict[object, float]] = {}
        for record in self.to_records():
            col = record[cols]
            out.setdefault(col, {})[record[rows]] = float(record[metric])
        return out

    def geomean_by(
        self, metric: str, by: GroupKey = "framework"
    ) -> Dict[object, float]:
        """Geometric mean of ``metric`` per group (``by`` field or tuple).

        An all-zero group (e.g. a ``traffic_*`` column for workloads
        that move no inter-GPM bytes) yields 0.0; mixed-sign or
        negative groups still raise from :func:`geomean
        <repro.stats.metrics.geomean>`.
        """
        groups: Dict[object, List[float]] = {}
        for record in self.to_records():
            key = self._group_key(record, by)
            groups.setdefault(key, []).append(float(record[metric]))
        return {
            key: 0.0 if all(v == 0.0 for v in values) else geomean(values)
            for key, values in groups.items()
        }

    def normalize_to(
        self,
        baseline: object,
        metric: str,
        rows: str = "workload",
        cols: str = "framework",
        invert: bool = False,
    ) -> Dict[object, Dict[object, float]]:
        """Each column's ``metric`` relative to the ``baseline`` column.

        With ``invert=False`` cells are ``mine / base`` (paper-style
        traffic ratios); with ``invert=True`` they are ``base / mine``
        (speedups).  A zero denominator yields 0.0, matching the
        traffic-ratio convention for workloads without baseline bytes.
        """
        table = self.pivot(metric, rows=rows, cols=cols)
        if baseline not in table:
            raise KeyError(
                f"baseline {baseline!r} missing from {sorted(map(str, table))}"
            )
        base_row = table[baseline]
        out: Dict[object, Dict[object, float]] = {}
        for col, values in table.items():
            normalised: Dict[object, float] = {}
            for row, value in values.items():
                base = base_row[row]
                num, den = (base, value) if invert else (value, base)
                normalised[row] = num / den if den > 0 else 0.0
            out[col] = normalised
        return out
