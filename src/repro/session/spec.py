"""Run specifications: the atomic unit of every experiment.

A :class:`RunSpec` names one cell of the paper's evaluation grid —
(framework, workload, system config, frames, seed, draw scale) — and
knows how to execute itself into a
:class:`~repro.stats.metrics.SceneResult`.  Specs are frozen and
picklable, so a sweep can ship them to worker processes unchanged.

:class:`ExperimentConfig` (with the :data:`FAST` / :data:`FULL`
presets) captures the scale knobs shared by a whole grid; it is the
canonical home of what :mod:`repro.experiments.runner` used to define.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.profiling import phase
from repro.scene.benchmarks import WORKLOADS, parse_workload
from repro.scene.scene import Scene
from repro.stats.metrics import SceneResult


class SpecError(ValueError):
    """Raised when a run specification is incomplete or inconsistent."""


#: Default scene length; AFR needs >= num_gpms frames to show pipelining.
DEFAULT_FRAMES = 3
#: Default scene-generation seed (the paper's publication year).
DEFAULT_SEED = 2019
#: Draw scale of the reduced preset used by tests and quick CLI passes.
FAST_SCALE = 0.15
#: Scene length of the reduced preset.
FAST_FRAMES = 2


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs shared by every run of an experiment grid.

    ``draw_scale`` shrinks workloads uniformly (the fast preset uses
    0.15); benchmarks run at 1.0.  ``num_frames`` is the scene length.
    """

    draw_scale: float = 1.0
    num_frames: int = DEFAULT_FRAMES
    seed: int = DEFAULT_SEED
    workloads: Sequence[str] = WORKLOADS

    def __post_init__(self) -> None:
        if self.draw_scale <= 0:
            raise ValueError("draw_scale must be positive")
        if self.num_frames < 1:
            raise ValueError("need at least one frame")


#: The full-scale preset used by the benchmark harness.
FULL = ExperimentConfig()
#: The reduced preset for quick runs and the test suite.
FAST = ExperimentConfig(draw_scale=FAST_SCALE, num_frames=FAST_FRAMES)


@lru_cache(maxsize=128)
def cached_scene(
    workload: str, num_frames: int, seed: int, draw_scale: float
) -> Scene:
    """The per-process memoised scene for one workload point.

    The single scene-construction path shared by :meth:`RunSpec.scene`,
    :meth:`Session.scene <repro.session.session.Session.scene>` and the
    legacy ``runner.scene_for`` helper.

    This memo is also the identity source the reuse cache
    (:mod:`repro.reuse`) builds on: cells of a sweep that share a
    workload point get the *same* :class:`Scene` — hence the same
    :class:`~repro.scene.scene.Frame` objects — so frame-anchored
    artefacts (batch groupings, characterised counters) are reused
    across frameworks and engine variants within one process.  An
    ``lru_cache`` eviction replaces the scene wholesale; the reuse
    cache's identity anchors make the old frames' entries unreachable
    rather than stale.

    When a compiled-scene store is active (:mod:`repro.scene.store` —
    threaded through ``Session/Sweep.run(scene_store=...)`` and the
    ``--scene-store`` CLI flag), the store is consulted *before*
    building: its entries are keyed by a SHA-256 over ``(workload,
    num_frames, seed, draw_scale)`` — exactly this memo's key — plus
    the store and generator versions, so a store hit is by construction
    the same scene this function would build, mmap-loaded instead of
    generated.  Loading happens inside the memo, so store-loaded scenes
    carry the same per-process identity anchor as built ones.  Corrupt
    or stale store entries degrade to a rebuild-and-rewrite, never to a
    different scene.
    """
    from repro.plan.store import CONTENT_KEY_ATTR
    from repro.scene.store import (
        active_scene_store,
        build_scene_counted,
        scene_key,
    )

    store = active_scene_store()
    if store is not None:
        scene = store.get_or_build(workload, num_frames, seed, draw_scale)
    else:
        scene = build_scene_counted(workload, num_frames, seed, draw_scale)
    # Stamp each frame with its scene-content key so the compiled-plan
    # store (:mod:`repro.plan.store`) can address frame-derived plans by
    # content.  The key rides on scene_key — which folds in
    # GENERATOR_VERSION — so regenerating scenes re-keys their plans
    # too.  Frames from trace replays or hand-built scenes never get the
    # stamp, which leaves the plan store inert for them.
    content = scene_key(workload, num_frames, seed, draw_scale)
    for frame in scene.frames:
        frame.__dict__[CONTENT_KEY_ATTR] = f"{content}:{frame.frame_id}"
    return scene


#: The identity columns every tidy result record carries, in column
#: order.  ``ResultSet.select`` validates its ``where`` keys against
#: this list so a typo cannot silently match nothing.
RECORD_FIELDS = (
    "framework",
    "workload",
    "config_label",
    "num_frames",
    "seed",
    "draw_scale",
)


@dataclass(frozen=True)
class RunSpec:
    """One (framework, workload, config) cell of the evaluation grid."""

    framework: str
    workload: str
    config: Optional[SystemConfig] = None
    num_frames: int = DEFAULT_FRAMES
    seed: int = DEFAULT_SEED
    draw_scale: float = 1.0
    #: Label identifying the config axis in records (e.g. "64GB/s").
    config_label: str = "base"
    #: Execution engine pricing the cell (see :mod:`repro.engine`).
    #: ``None`` (the default) defers to the framework's own selection
    #: (variant modifier or config engine, else ``"analytic"``); an
    #: explicit name — including ``"analytic"`` — overrides it.  Part
    #: of the spec's cache fingerprint when it names a non-analytic
    #: engine.
    engine: Optional[str] = None

    def validate(self) -> "RunSpec":
        """Check the spec against the registries; return it for chaining."""
        from repro.engine import EngineError, validate_engine_name
        from repro.frameworks.base import validate_framework_name

        try:
            # Accepts registered names and parameterised variants like
            # "oo-vr:no-dhc" or "baseline:topo=ring".
            validate_framework_name(self.framework)
        except KeyError as error:
            raise SpecError(error.args[0]) from error
        try:
            # Accepts the nine WORKLOADS points and bare abbreviations
            # like "DM3" (default resolution), matching scene builders.
            parse_workload(self.workload)
        except KeyError as error:
            raise SpecError(f"unknown workload: {error.args[0]}") from error
        if self.engine is not None:
            try:
                validate_engine_name(self.engine)
            except EngineError as error:
                raise SpecError(str(error)) from error
        if self.num_frames < 1:
            raise SpecError("need at least one frame")
        if self.draw_scale <= 0:
            raise SpecError("draw_scale must be positive")
        if self.config is not None:
            self.config.validate()
        return self

    def with_preset(self, experiment: ExperimentConfig) -> "RunSpec":
        """A copy with the preset's scale/frames/seed applied."""
        return replace(
            self,
            draw_scale=experiment.draw_scale,
            num_frames=experiment.num_frames,
            seed=experiment.seed,
        )

    def scene(self) -> Scene:
        """The (memoised) scene this spec renders.

        Scenes are deterministic per (workload, frames, seed, scale) and
        cached within a process, so sweeps that revisit the same
        workload under different hardware configurations (Figs. 4, 17,
        18) compare identical inputs.
        """
        return cached_scene(
            self.workload, self.num_frames, self.seed, self.draw_scale
        )

    @property
    def effective_engine(self) -> str:
        """The engine that actually prices this cell.

        The engine can be chosen three ways; precedence mirrors how
        :meth:`build` layers them: an explicit :attr:`engine` field
        (even ``"analytic"``) overrides everything, else the last
        ``engine=`` modifier in a variant framework name
        (``oo-vr:engine=event`` — applied after construction by the
        variant builder), else the config's ``engine``.  Result
        provenance (``ResultSet`` records and ``select(engine=...)``)
        keys on this, not the raw field.
        """
        from repro.frameworks.variants import engine_modifier

        if self.engine is not None:
            return self.engine
        chosen = engine_modifier(self.framework)
        if chosen is not None:
            return chosen
        if self.config is not None:
            return self.config.engine
        return "analytic"

    def build(self):
        """The framework instance this spec describes, engine applied.

        An explicit :attr:`engine` overrides the built framework's
        config engine *after* construction — so ``engine="analytic"``
        really does force the analytic model even on an
        ``:engine=event`` variant, while the ``None`` default leaves
        the framework's own selection alone (schemes that transform
        their config — e.g. ``1tbs-bw`` — keep doing so).  The single
        construction path shared by :meth:`execute` (worker processes)
        and :meth:`Session.run <repro.session.session.Session.run>`
        (which keeps the instance for introspection).
        """
        from repro.frameworks.base import build_framework

        framework = build_framework(self.framework, self.config)
        if self.engine is not None:
            framework.config = framework.config.with_engine(self.engine)
        return framework

    def execute(self) -> SceneResult:
        """Render this cell: fresh framework, memoised scene."""
        framework = self.build()
        with phase("scene"):
            scene = self.scene()
        with phase("execute"):
            return framework.render_scene(scene)

    def record_fields(self) -> dict:
        """The spec's identity columns of a tidy result record."""
        return {name: getattr(self, name) for name in RECORD_FIELDS}
