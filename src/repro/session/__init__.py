"""Unified Session/Sweep API: one composable entry point per experiment.

Every experiment in this repo — each figure, table, example, and bench —
is a cell (or grid of cells) of the paper's evaluation space
(framework x workload x system config).  This package names that space:

- :class:`RunSpec` — one frozen, picklable cell;
- :class:`Session` — fluent builder for a single run::

      Session().framework("oo-vr").workload("HL2-1280").fast().run()

- :class:`Sweep` — cartesian grids with optional multi-process
  execution (``.run(jobs=4)``) and deterministic ordering;
- :class:`ResultSet` — tidy records with ``to_records`` / ``to_json`` /
  ``to_csv`` export and the paper's figure math (``pivot``,
  ``geomean_by``, ``normalize_to``).

:data:`FAST` and :data:`FULL` are the two standard scale presets
(:class:`ExperimentConfig`), applied with ``.fast()`` / ``.full()`` /
``.preset(...)``.

:class:`ResultCache` memoises executed cells on disk, keyed by a
stable content hash of the spec (:func:`spec_key`); pass it (or a
directory path) as ``Sweep.run(cache=...)`` to skip already-executed
grid cells while staying byte-identical to an uncached run.  The
compiled-scene store (:mod:`repro.scene.store`) is the same idea one
layer down: ``run(scene_store=...)`` mmap-loads already-compiled
workload points instead of rebuilding them in every process, again
byte-identical either way.

*Where* a sweep executes is a pluggable backend
(:mod:`repro.session.executor`): :class:`SerialExecutor`,
:class:`ProcessExecutor` (``Sweep.run(jobs=N)`` is sugar for it) and
:class:`ShardExecutor` — one deterministic, content-addressed slice of
the grid, the scatter half of cross-machine sweeps whose caches
:meth:`ResultCache.merge` gathers back together.
"""

from repro.session.cache import (
    CacheMergeError,
    CacheStats,
    MergeStats,
    ResultCache,
    encode_entry,
    is_entry_key,
    spec_key,
)
from repro.session.executor import (
    EXECUTOR_NAMES,
    ExecutorError,
    ProcessExecutor,
    ResultCallback,
    SerialExecutor,
    ShardExecutor,
    ShardManifest,
    SweepExecutor,
    executor_names,
    grid_key,
    iter_shards,
    load_shard_manifests,
    make_executor,
    parse_shard,
    register_executor,
    shard_manifest_paths,
    shard_of,
)
from repro.session.result import ResultSet
from repro.session.session import Session, SessionError, Sweep
from repro.session.spec import (
    DEFAULT_FRAMES,
    DEFAULT_SEED,
    FAST,
    FULL,
    RECORD_FIELDS,
    ExperimentConfig,
    RunSpec,
    SpecError,
)

__all__ = [
    "CacheMergeError",
    "CacheStats",
    "DEFAULT_FRAMES",
    "DEFAULT_SEED",
    "EXECUTOR_NAMES",
    "ExecutorError",
    "ExperimentConfig",
    "FAST",
    "FULL",
    "MergeStats",
    "ProcessExecutor",
    "RECORD_FIELDS",
    "ResultCache",
    "ResultCallback",
    "ResultSet",
    "RunSpec",
    "SerialExecutor",
    "Session",
    "SessionError",
    "ShardExecutor",
    "ShardManifest",
    "SpecError",
    "Sweep",
    "SweepExecutor",
    "encode_entry",
    "executor_names",
    "grid_key",
    "is_entry_key",
    "iter_shards",
    "load_shard_manifests",
    "make_executor",
    "parse_shard",
    "register_executor",
    "shard_manifest_paths",
    "shard_of",
    "spec_key",
]
