"""Fluent builders for single runs and cartesian sweeps.

``Session`` configures and executes one cell::

    result = Session().framework("oo-vr").workload("HL2-1280").fast().run()

``Sweep`` expands cartesian (config x framework x workload) grids into
:class:`~repro.session.spec.RunSpec` lists and hands them to a
pluggable :class:`~repro.session.executor.SweepExecutor` backend —
``serial``, ``process`` (``jobs=4`` is sugar for it) or ``shard``
(one deterministic slice of a cross-machine scatter) — collecting a
:class:`~repro.session.result.ResultSet`::

    records = (
        Sweep()
        .frameworks("baseline", "oo-vr")
        .workloads("HL2-1280", "WE")
        .fast()
        .run(jobs=4)
        .to_records()
    )

Execution is deterministic: specs run (or are gathered) in grid order,
so a parallel sweep produces records identical to a serial one, and a
sharded-then-merged sweep replays byte-identically to either.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.plan.store import PlanStore, plan_store_scope
from repro.profiling import PhaseProfile, capture, phase
from repro.reuse import reuse_scope
from repro.scene.scene import Scene
from repro.scene.store import SceneStore, scene_store_scope
from repro.session.cache import ResultCache
from repro.session.executor import (
    ProfilingSerialExecutor,
    ResultCallback,
    SweepExecutor,
    make_executor,
)
from repro.session.result import ResultSet
from repro.session.spec import (
    DEFAULT_FRAMES,
    DEFAULT_SEED,
    FAST,
    FULL,
    ExperimentConfig,
    RunSpec,
    SpecError,
)
from repro.stats.metrics import SceneResult


class SessionError(ValueError):
    """Raised when a builder is incomplete or inconsistent."""


class _ScaleMixin:
    """The scale knobs shared by ``Session`` and ``Sweep``."""

    def __init__(self) -> None:
        self._num_frames: int = DEFAULT_FRAMES
        self._seed: int = DEFAULT_SEED
        self._draw_scale: float = 1.0
        self._engine: Optional[str] = None

    def engine(self, name: str):
        """Select the execution engine (``analytic``/``event``) for
        every cell this builder produces (see :mod:`repro.engine`).
        An explicit selection — including ``analytic`` — overrides a
        variant- or config-chosen engine; part of the spec's cache
        fingerprint when it names a non-analytic engine.
        """
        from repro.engine import EngineError, validate_engine_name

        try:
            validate_engine_name(name)
        except EngineError as error:
            raise SessionError(str(error)) from error
        self._engine = name
        return self

    def frames(self, num_frames: int):
        if num_frames < 1:
            raise SessionError("need at least one frame")
        self._num_frames = int(num_frames)
        return self

    def seed(self, seed: int):
        self._seed = int(seed)
        return self

    def scale(self, draw_scale: float):
        if draw_scale <= 0:
            raise SessionError("draw_scale must be positive")
        self._draw_scale = float(draw_scale)
        return self

    def preset(self, experiment: ExperimentConfig):
        """Apply an :class:`ExperimentConfig`'s scale/frames/seed."""
        self._num_frames = experiment.num_frames
        self._seed = experiment.seed
        self._draw_scale = experiment.draw_scale
        return self

    def fast(self):
        """The reduced preset used by tests and quick CLI passes."""
        return self.preset(FAST)

    def full(self):
        """The full-scale preset used by the benchmark harness."""
        return self.preset(FULL)


def _config_label(config: SystemConfig) -> str:
    """A readable default label for a custom config axis point."""
    return (
        f"{config.num_gpms}gpm@{config.link.bytes_per_cycle:.0f}GB/s"
    )


class Session(_ScaleMixin):
    """Fluent builder for one (framework, workload) run."""

    def __init__(self) -> None:
        super().__init__()
        self._framework: Optional[str] = None
        self._workload: Optional[str] = None
        self._config: Optional[SystemConfig] = None
        self._config_label: Optional[str] = None
        #: The framework instance of the last ``run()`` (for engine
        #: introspection, e.g. dispatch timelines).
        self.last_framework = None
        #: The :class:`~repro.profiling.PhaseProfile` of the last
        #: ``run(profile=True)``; ``None`` after unprofiled runs.
        self.last_profile: Optional[PhaseProfile] = None

    def framework(self, name: str) -> "Session":
        self._framework = name
        return self

    def workload(self, name: str) -> "Session":
        self._workload = name
        return self

    def config(
        self, config: Optional[SystemConfig], label: Optional[str] = None
    ) -> "Session":
        self._config = config
        self._config_label = label
        return self

    def spec(self) -> RunSpec:
        """The validated :class:`RunSpec` this builder describes."""
        if self._framework is None:
            raise SessionError("no framework selected; call .framework(name)")
        if self._workload is None:
            raise SessionError("no workload selected; call .workload(name)")
        label = self._config_label
        if label is None:
            label = "base" if self._config is None else _config_label(self._config)
        return RunSpec(
            framework=self._framework,
            workload=self._workload,
            config=self._config,
            num_frames=self._num_frames,
            seed=self._seed,
            draw_scale=self._draw_scale,
            config_label=label,
            engine=self._engine,
        ).validate()

    def scene(self) -> Scene:
        """The (memoised) scene the run would render.

        Only the workload and scale knobs are needed, so the framework
        may be left unset (used by Table 3's workload audit).
        """
        if self._workload is None:
            raise SessionError("no workload selected; call .workload(name)")
        probe = RunSpec(
            framework="baseline",
            workload=self._workload,
            num_frames=self._num_frames,
            seed=self._seed,
            draw_scale=self._draw_scale,
        ).validate()
        return probe.scene()

    def run(
        self,
        profile: bool = False,
        reuse: bool = True,
        scene_store: Optional[Union[SceneStore, str, Path]] = None,
        plan_store: Optional[Union[PlanStore, str, Path]] = None,
    ) -> SceneResult:
        """Execute the run and return its :class:`SceneResult`.

        Unlike :meth:`RunSpec.execute <repro.session.spec.RunSpec.execute>`
        (which worker processes call), the framework instance is kept on
        :attr:`last_framework` for introspection — dispatch records,
        ``last_system.last_trace``.  With ``profile=True`` the run is
        additionally timed phase by phase (scene build, binding,
        pricing, execution) into :attr:`last_profile`; the numerical
        result is unchanged.  ``reuse=False`` disables the per-process
        :mod:`repro.reuse` cache for the run's duration (results are
        byte-identical either way — only the wall clock changes).

        ``scene_store`` (a :class:`~repro.scene.store.SceneStore` or a
        directory path) activates the persistent compiled-scene store
        for the run's duration: the scene is mmap-loaded from disk when
        already compiled, built-and-stored otherwise.  ``plan_store``
        does the same for the compiled work-plan store
        (:mod:`repro.plan.store`): Eq. 3 characterisation and the
        middleware grouping are mmap-loaded when already compiled,
        built-and-stored otherwise.  Results are byte-identical with
        either store cold, warm or absent.
        """
        spec = self.spec()
        framework = spec.build()
        self.last_framework = framework
        self.last_profile = None
        with reuse_scope(reuse), scene_store_scope(
            scene_store
        ), plan_store_scope(plan_store):
            if not profile:
                return framework.render_scene(spec.scene())
            self.last_profile = PhaseProfile()
            with capture(self.last_profile):
                with phase("scene"):
                    scene = spec.scene()
                with phase("execute"):
                    return framework.render_scene(scene)


class Sweep(_ScaleMixin):
    """Cartesian (config x framework x workload) grid of runs."""

    def __init__(self) -> None:
        super().__init__()
        self._frameworks: List[str] = []
        self._workloads: List[str] = []
        self._configs: List[Tuple[str, Optional[SystemConfig]]] = []
        self._default_workloads: Sequence[str] = FULL.workloads

    # -- axes ---------------------------------------------------------------

    def frameworks(self, *names: str) -> "Sweep":
        """Append framework axis points (order defines run order)."""
        for name in names:
            if name in self._frameworks:
                raise SessionError(f"framework {name!r} listed twice")
            self._frameworks.append(name)
        return self

    def workloads(self, *names: str) -> "Sweep":
        """Append workload axis points (order defines run order)."""
        for name in names:
            if name in self._workloads:
                raise SessionError(f"workload {name!r} listed twice")
            self._workloads.append(name)
        return self

    def config(
        self, config: SystemConfig, label: Optional[str] = None
    ) -> "Sweep":
        """Append a system-config axis point (e.g. a link bandwidth)."""
        label = label or _config_label(config)
        if any(existing == label for existing, _ in self._configs):
            raise SessionError(f"config label {label!r} listed twice")
        self._configs.append((label, config))
        return self

    def preset(self, experiment: ExperimentConfig) -> "Sweep":
        super().preset(experiment)
        self._default_workloads = experiment.workloads
        return self

    # -- expansion and execution --------------------------------------------

    def specs(self) -> List[RunSpec]:
        """The validated grid, in deterministic config>framework>workload order."""
        if not self._frameworks:
            raise SessionError("no frameworks selected; call .frameworks(...)")
        workloads = self._workloads or list(self._default_workloads)
        if not workloads:
            raise SessionError("no workloads selected; call .workloads(...)")
        configs = self._configs or [("base", None)]
        out: List[RunSpec] = []
        for label, config in configs:
            for framework in self._frameworks:
                for workload in workloads:
                    out.append(
                        RunSpec(
                            framework=framework,
                            workload=workload,
                            config=config,
                            num_frames=self._num_frames,
                            seed=self._seed,
                            draw_scale=self._draw_scale,
                            config_label=label,
                            engine=self._engine,
                        ).validate()
                    )
        return out

    def run(
        self,
        jobs: int = 1,
        cache: Optional[Union[ResultCache, str, Path]] = None,
        executor: Optional[Union[str, SweepExecutor]] = None,
        on_result: Optional[ResultCallback] = None,
        shard: Optional[Union[str, Tuple[int, int]]] = None,
        profile: bool = False,
        reuse: bool = True,
        scene_store: Optional[Union[SceneStore, str, Path]] = None,
        plan_store: Optional[Union[PlanStore, str, Path]] = None,
    ) -> ResultSet:
        """Execute the grid into a :class:`ResultSet`.

        Execution is delegated to a pluggable
        :class:`~repro.session.executor.SweepExecutor`.  ``executor``
        names a registered backend (``"serial"``, ``"process"``,
        ``"shard"``) or passes an instance; left ``None`` it is
        inferred — ``shard`` given selects ``shard``, ``jobs > 1``
        selects ``process`` (so ``run(jobs=4)`` keeps its historical
        meaning), else ``serial``.  Whatever the backend, results are
        gathered in grid order, so records (and any CSV or JSON
        export) are identical across backends.

        ``cache`` (a :class:`~repro.session.cache.ResultCache` or a
        directory path) memoises results by :func:`spec_key
        <repro.session.cache.spec_key>`: already-executed cells are
        loaded instead of re-rendered, misses are executed and stored.
        The serialisation round trip is exact, so a cached run stays
        byte-identical to an uncached one.

        ``shard`` (``"I/N"`` or an ``(index, count)`` pair) runs only
        the deterministic slice of the grid owned by shard ``I`` of
        ``N`` — the scatter half of a cross-machine sweep (see
        :mod:`repro.session.executor`).  The returned set then holds
        just the owned cells; merge the shards' caches
        (:meth:`ResultCache.merge
        <repro.session.cache.ResultCache.merge>`) or record sets
        (:meth:`ResultSet.merge <repro.session.result.ResultSet.merge>`)
        to reassemble the grid.

        ``on_result(spec, result, cached)`` fires once per completed
        cell, in grid order (``oovr sweep --progress`` prints one line
        per call).

        ``profile=True`` times every cell phase by phase (scene build,
        binding, pricing, execution, cache I/O) and attaches one
        :class:`~repro.profiling.PhaseProfile` per run to the returned
        set (:attr:`ResultSet.profiles
        <repro.session.result.ResultSet.profiles>`, plus
        ``profile_*_s`` record columns).  Profiling forces the serial
        backend — wall-clock timings from parallel workers would not
        be comparable — so it cannot be combined with ``jobs``,
        ``executor`` or ``shard``.

        ``reuse=False`` disables the per-process :mod:`repro.reuse`
        cache for the sweep's duration — in-process backends run under
        a :func:`~repro.reuse.reuse_scope`, and the process backend
        forwards the flag to its workers.  Records are byte-identical
        either way; grid cells sharing a workload are simply slower
        without the cache.

        ``scene_store`` (a :class:`~repro.scene.store.SceneStore` or a
        directory path) activates the persistent compiled-scene store
        for the sweep's duration: workload points already compiled on
        disk are mmap-loaded instead of rebuilt, and the process
        backend forwards the store path to its workers so a ``jobs=N``
        sweep compiles each workload point once instead of N times.
        Records are byte-identical with the store cold, warm or absent.

        ``plan_store`` (a :class:`~repro.plan.store.PlanStore` or a
        directory path) does the same for the compiled work-plan store
        (:mod:`repro.plan.store`): Eq. 3 frame characterisation and the
        middleware batch grouping are mmap-loaded per (workload, cost
        config) point when already compiled, built-and-stored
        otherwise, and the process backend forwards the store path so a
        ``jobs=N`` sweep characterises each point once fleet-wide.
        Records are byte-identical with the store cold, warm or absent.
        """
        if jobs < 1:
            raise SessionError("jobs must be at least 1")
        specs = self.specs()
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        if profile:
            if jobs != 1 or shard is not None or (
                executor is not None and executor not in ("serial", "profile")
            ):
                raise SessionError(
                    "profile=True runs serially; drop jobs/executor/shard"
                )
            backend: SweepExecutor = ProfilingSerialExecutor()
        else:
            backend = make_executor(executor, jobs=jobs, shard=shard)
        with reuse_scope(reuse), scene_store_scope(
            scene_store
        ), plan_store_scope(plan_store):
            results = backend.run(specs, cache=cache, on_result=on_result)
        if len(results) != len(specs):
            raise SessionError(
                f"executor {getattr(backend, 'name', backend)!r} returned "
                f"{len(results)} results for {len(specs)} specs"
            )
        kept = [
            (spec, result)
            for spec, result in zip(specs, results)
            if result is not None
        ]
        profiles = backend.profiles if profile else None
        return ResultSet(kept, profiles=profiles)
