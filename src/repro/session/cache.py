"""Content-addressed result cache keyed by the frozen :class:`RunSpec`.

A sweep cell is fully determined by its spec: the identity columns
(:data:`~repro.session.spec.RECORD_FIELDS`) plus the hardware
configuration it runs under.  :func:`spec_key` hashes that identity
into a stable hex digest — SHA-256 over canonical JSON, so the key is
identical across processes, machines and Python hash seeds — and
:class:`ResultCache` stores one JSON document per key, round-tripped
through :meth:`SceneResult.to_dict
<repro.stats.metrics.SceneResult.to_dict>` /
:meth:`~repro.stats.metrics.SceneResult.from_dict`.

``Sweep.run(cache=...)`` consults the cache per cell: hits skip
execution entirely, misses execute (serially or across workers) and
are stored.  Because the serialisation round trip is exact, a cached
sweep exports records, JSON and CSV byte-identical to an uncached one.

Corruption is tolerated, not trusted: an unreadable entry, a schema
mismatch, or a stored spec that disagrees with the requested one all
count as misses, and the re-executed result overwrites the bad entry.

Because keys are stable *content* addresses, caches compose across
machines: shards of one grid scattered over hosts (``oovr sweep
--shard I/N --cache DIR``, :mod:`repro.session.executor`) each fill a
directory that :meth:`ResultCache.merge` folds back together —
per-entry atomic copies with conflict detection, so two shards that
somehow executed the same cell must agree byte-for-byte (or the merge
raises :class:`CacheMergeError`).  ``oovr cache merge DST SRC...`` is
the CLI spelling; replaying the grid against the merged directory is
100 % hits and byte-identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.session.spec import RunSpec
from repro.stats.metrics import SceneResult

#: Bumped whenever the entry schema changes; mismatching entries are
#: treated as misses and rewritten.
CACHE_VERSION = 1

_ENTRY_SUFFIX = ".json"

_KEY_DIGITS = frozenset("0123456789abcdef")


class CacheMergeError(ValueError):
    """Two caches hold different results for the same spec key."""


@dataclass
class MergeStats:
    """What one :meth:`ResultCache.merge` pass did."""

    #: Entries copied because the destination lacked the key.
    copied: int = 0
    #: Keys present in both with byte-identical payloads (no-ops).
    identical: int = 0
    #: Conflicting keys resolved by ``on_conflict="keep"``.
    kept: int = 0
    #: Conflicting keys resolved by ``on_conflict="replace"``.
    replaced: int = 0
    #: Shard manifests copied alongside the entries.
    manifests: int = 0

    @property
    def conflicts(self) -> int:
        return self.kept + self.replaced

    def summary(self) -> str:
        text = f"{self.copied} copied, {self.identical} identical"
        if self.conflicts:
            text += (
                f", {self.conflicts} conflict(s) "
                f"({self.kept} kept, {self.replaced} replaced)"
            )
        if self.manifests:
            text += f", {self.manifests} shard manifest(s)"
        return text


def config_fingerprint(spec: RunSpec) -> Optional[Dict[str, object]]:
    """The spec's hardware configuration as a plain JSON-able dict.

    ``config_label`` is cosmetic (two labels may name the same config,
    one label may name two), so the cache keys on the configuration's
    actual values instead; ``None`` means the Table 2 default.

    The default ``analytic`` engine is elided from the fingerprint so
    every pre-engine cache entry keeps its address: only a non-default
    ``engine`` changes the key.
    """
    if spec.config is None:
        return None
    data = dataclasses.asdict(spec.config)
    if data.get("engine") == "analytic":
        del data["engine"]
    return data


def is_entry_key(key: str) -> bool:
    """Whether ``key`` is a well-formed entry address (sha256 hex)."""
    return len(key) == 64 and set(key) <= _KEY_DIGITS


def spec_key(spec: RunSpec) -> str:
    """Stable content hash of one evaluation cell.

    Covers every :meth:`RunSpec.record_fields
    <repro.session.spec.RunSpec.record_fields>` column except the
    cosmetic ``config_label``, plus the full config fingerprint, plus
    the execution engine when it is not the default — ``engine=`` is
    part of the spec fingerprint, so analytic and event results never
    collide, while caches written before the engine layer existed still
    hit for analytic runs.
    """
    identity = spec.record_fields()
    identity.pop("config_label", None)
    payload = {
        "version": CACHE_VERSION,
        "spec": identity,
        "config": config_fingerprint(spec),
    }
    # Key on the engine that actually prices the cell (field >
    # variant modifier > config — :meth:`RunSpec.effective_engine`),
    # so an explicit analytic override of an ``:engine=event`` variant
    # never collides with the event cell it overrides.
    if spec.effective_engine != "analytic":
        payload["engine"] = spec.effective_engine
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_entry(spec: RunSpec, result: SceneResult) -> str:
    """The exact on-disk text of one cache entry.

    The single encoding shared by :meth:`ResultCache.put` and the sweep
    service's worker uploads (:mod:`repro.service`): because the text
    is a pure function of ``(spec, result)`` and the simulator is
    deterministic, two hosts that executed the same cell produce
    byte-identical entries — which is what lets
    :meth:`ResultCache.merge` / :meth:`ResultCache.merge_entry` treat
    any byte-level disagreement as a genuine model/schema skew.
    """
    entry = {
        "version": CACHE_VERSION,
        "key": spec_key(spec),
        "spec": spec.record_fields(),
        "config": config_fingerprint(spec),
        "result": result.to_dict(include_frames=True),
    }
    if spec.effective_engine != "analytic":
        # Auditability only — the engine is already part of the key.
        entry["engine"] = spec.effective_engine
    return json.dumps(entry, indent=1) + "\n"


@dataclass
class CacheStats:
    """Hit/miss accounting accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Misses caused by unreadable or mismatching entries.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        text = f"{self.hits} hits, {self.misses} misses"
        if self.corrupt:
            text += f" ({self.corrupt} corrupt entries discarded)"
        return text


class ResultCache:
    """On-disk (spec -> SceneResult) store under one directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # -- addressing ---------------------------------------------------------

    def key(self, spec: RunSpec) -> str:
        return spec_key(spec)

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{self.key(spec)}{_ENTRY_SUFFIX}"

    def _entries(self) -> Iterator[Path]:
        # Entry files are exactly "<sha256-hex>.json"; the filter keeps
        # shard manifests (and any stray JSON dropped in the directory)
        # out of entry counts, clears and merges.
        return (
            path
            for path in sorted(self.root.glob(f"*{_ENTRY_SUFFIX}"))
            if path.is_file()
            and len(path.stem) == 64
            and set(path.stem) <= _KEY_DIGITS
        )

    def keys(self) -> List[str]:
        """Every stored spec key, sorted."""
        return [path.stem for path in self._entries()]

    def __contains__(self, key: str) -> bool:
        return (self.root / f"{key}{_ENTRY_SUFFIX}").is_file()

    # -- lookup and store ---------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[SceneResult]:
        """The cached result for ``spec``, or ``None`` on a miss.

        Anything wrong with the entry — unparsable JSON, a schema from
        another cache version, a stored spec that does not match the
        requested one (hash collision or hand-edited file) — degrades
        to a miss rather than an error.
        """
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["version"] != CACHE_VERSION:
                raise ValueError("cache entry from another schema version")
            # Compare the same identity spec_key hashes: config_label is
            # cosmetic (two labels may name one config), so a relabelled
            # lookup must still hit.
            stored = dict(entry["spec"])
            stored.pop("config_label", None)
            expected = _jsonify(spec.record_fields())
            expected.pop("config_label", None)
            if stored != expected:
                raise ValueError("cache entry spec mismatch")
            if entry.get("config") != _jsonify(config_fingerprint(spec)):
                raise ValueError("cache entry config mismatch")
            result = SceneResult.from_dict(entry["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, spec: RunSpec, result: SceneResult) -> Path:
        """Store ``result`` under ``spec``'s key (atomic replace).

        Crash-safe under concurrent writers: each store streams into
        its own uniquely-named temp file (never a fixed ``.tmp`` name
        two shard processes sharing the directory could collide on)
        and lands with one :func:`os.replace`, so readers only ever
        see complete entries and the last writer wins whole-file.
        """
        text = encode_entry(spec, result)
        path = self.path_for(spec)
        self._atomic_write(path, text)
        self.stats.stores += 1
        return path

    def _atomic_write(self, path: Path, text: str) -> None:
        """Write ``text`` to ``path`` via a unique temp file + replace."""
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=self.root,
            prefix=f".{path.stem[:16]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise

    def merge_entry(
        self, key: str, payload: str, on_conflict: str = "error"
    ) -> str:
        """Fold one entry payload in by key; the unit of :meth:`merge`.

        The same semantics a directory merge applies per entry, exposed
        for callers that receive payload *text* rather than a sibling
        cache directory — the sweep service's upload path above all.
        Returns what happened: ``"copied"`` (destination lacked the
        key), ``"identical"`` (byte-identical payload, a no-op),
        ``"kept"`` or ``"replaced"`` (conflict resolved per
        ``on_conflict``).  ``on_conflict="error"`` raises
        :class:`CacheMergeError` on byte-level disagreement — two
        writers producing different bytes for one content address means
        model or schema skew between them.
        """
        if on_conflict not in ("error", "keep", "replace"):
            raise ValueError(
                f"on_conflict must be 'error', 'keep' or 'replace', "
                f"got {on_conflict!r}"
            )
        if not is_entry_key(key):
            raise ValueError(f"not a cache entry key: {key!r}")
        destination = self.root / f"{key}{_ENTRY_SUFFIX}"
        if not destination.is_file():
            self._atomic_write(destination, payload)
            return "copied"
        if destination.read_text(encoding="utf-8") == payload:
            return "identical"
        if on_conflict == "error":
            raise CacheMergeError(
                f"cache merge conflict on {key[:12]}…: two writers hold "
                "different results for the same spec key (model or "
                "schema skew); pass on_conflict='keep' or 'replace' to "
                "resolve"
            )
        if on_conflict == "replace":
            self._atomic_write(destination, payload)
            return "replaced"
        return "kept"

    def merge(
        self,
        other: Union["ResultCache", str, Path],
        on_conflict: str = "error",
    ) -> MergeStats:
        """Fold ``other``'s entries into this cache; the gather half of
        a sharded sweep.

        Every entry copies atomically (unique temp file + replace, the
        :meth:`put` discipline), so a reader of the destination never
        sees a torn entry even mid-merge.  A key present in both caches
        with byte-identical payloads is a no-op; *different* payloads
        are a conflict — two shards disagreeing about the same content
        address means a model or schema skew between hosts:

        - ``on_conflict="error"`` (default) raises
          :class:`CacheMergeError` naming the key;
        - ``"keep"`` keeps the destination's entry;
        - ``"replace"`` takes the source's.

        Shard manifests (``repro.session.executor.ShardManifest``
        files) ride along so the merged directory still knows which
        shard owned which keys — ``oovr cache manifest DIR`` audits
        coverage from them.
        """
        if on_conflict not in ("error", "keep", "replace"):
            raise ValueError(
                f"on_conflict must be 'error', 'keep' or 'replace', "
                f"got {on_conflict!r}"
            )
        if not isinstance(other, ResultCache):
            other = ResultCache(other)
        stats = MergeStats()
        for source in other._entries():
            payload = source.read_text(encoding="utf-8")
            try:
                outcome = self.merge_entry(
                    source.stem, payload, on_conflict=on_conflict
                )
            except CacheMergeError:
                raise CacheMergeError(
                    f"cache merge conflict on {source.stem[:12]}…: "
                    f"{other.root} and {self.root} hold different results "
                    "for the same spec key (model or schema skew between "
                    "writers); pass on_conflict='keep' or 'replace' to "
                    "resolve"
                ) from None
            # Outcome names match the MergeStats counter fields.
            setattr(stats, outcome, getattr(stats, outcome) + 1)
        for manifest in sorted(other.root.glob("*.manifest.json")):
            if manifest.is_file():
                self._atomic_write(
                    self.root / manifest.name,
                    manifest.read_text(encoding="utf-8"),
                )
                stats.manifests += 1
        return stats

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def info(self) -> Dict[str, object]:
        """Entry count and on-disk footprint (for ``oovr cache info``)."""
        entries: List[Tuple[str, int]] = [
            (path.stem, path.stat().st_size) for path in self._entries()
        ]
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(size for _, size in entries),
        }

    def status(self) -> Dict[str, object]:
        """Machine-readable cache status: :meth:`info` plus per-grid
        shard-manifest coverage.

        The one code path behind both ``oovr cache info --json`` and
        the sweep service's ``GET /cache`` endpoint, so humans and
        clients read the same numbers.  Each ``grids`` row aggregates
        every readable shard manifest of one scattered grid:
        ``cells`` (the whole grid), ``owned`` (cells some shard
        claimed), ``present`` (grid cells with entries on disk) and
        ``complete`` (every cell present).  Unreadable manifests are
        counted, not fatal.
        """
        from repro.session.executor import ShardManifest, shard_manifest_paths

        info = self.info()
        present = frozenset(path.stem for path in self._entries())
        grids: Dict[str, Dict[str, object]] = {}
        unreadable = 0
        for path in shard_manifest_paths(self.root):
            try:
                manifest = ShardManifest.load(path)
            except (OSError, ValueError, KeyError, TypeError):
                unreadable += 1
                continue
            row = grids.setdefault(
                manifest.grid_key,
                {
                    "grid": manifest.grid_key,
                    "shard_count": manifest.shard_count,
                    "shards": 0,
                    "cells": 0,
                    "owned": set(),
                    "all": set(),
                },
            )
            row["shards"] += 1  # type: ignore[operator]
            row["owned"].update(manifest.owned_keys)  # type: ignore[union-attr]
            row["all"].update(manifest.owned_keys)  # type: ignore[union-attr]
            row["all"].update(manifest.skipped_keys)  # type: ignore[union-attr]
        rows: List[Dict[str, object]] = []
        for grid in sorted(grids):
            row = grids[grid]
            cells = row.pop("all")
            owned = row.pop("owned")
            row["cells"] = len(cells)
            row["owned"] = len(owned)  # type: ignore[assignment]
            row["present"] = len(cells & present)  # type: ignore[operator]
            row["complete"] = row["present"] == row["cells"]
            rows.append(row)
        info["grids"] = rows
        info["unreadable_manifests"] = unreadable
        return info

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            path.unlink()
            removed += 1
        return removed


def _jsonify(value: object) -> object:
    """``value`` as it would look after a JSON round trip."""
    return json.loads(json.dumps(value))
