"""Pluggable sweep execution backends: *what* to run vs. *where*.

``Sweep.run`` expands a grid into :class:`~repro.session.spec.RunSpec`
cells; a :class:`SweepExecutor` decides where those cells execute.
Four backends ship, selectable by name end-to-end (``Sweep.run
(executor=...)``, ``oovr sweep --executor``):

- ``serial`` — in-process, one cell at a time, in grid order;
- ``process`` — fans cache misses out over a ``ProcessPoolExecutor``
  (``Sweep.run(jobs=N)`` remains sugar for this backend) while
  gathering results in grid order, so records stay byte-identical to a
  serial run;
- ``shard`` — executes only the deterministic ``shard_index/shard_count``
  slice of the grid (:func:`shard_of` partitions by :func:`spec_key
  <repro.session.cache.spec_key>`, so membership depends on cell
  *content*, never on grid order) and records a :class:`ShardManifest`
  of owned vs. skipped keys next to the per-shard cache entries;
- ``remote`` — submits the grid to an ``oovr serve`` daemon
  (:mod:`repro.service`) and blocks for results; the daemon's worker
  fleet executes the misses and its cache answers repeats.  By name it
  reads the daemon URL from ``$OOVR_SERVER``; ``oovr sweep --server
  URL`` builds the instance directly.

The shard backend is the scatter half of cross-machine sweeps: a
coordinator runs the same grid on N hosts with ``--shard i/N --cache
DIR``, collects the cache directories, ``oovr cache merge``\\ s them
(:meth:`ResultCache.merge <repro.session.cache.ResultCache.merge>`)
and replays the grid unsharded against the merged directory — 100 %
hits, byte-identical exports.

Every executor threads an optional ``on_result`` callback —
``on_result(spec, result, cached)`` fired once per completed cell, in
grid order — which ``oovr sweep --progress`` uses to print one line
per cell.

Executors with no work left to place (every cell a cache hit) still
fire the callbacks, so progress output is a complete account of the
grid regardless of cache state.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.profiling import PhaseProfile, capture, phase
from repro.reuse import reuse_enabled, set_reuse
from repro.plan.store import active_plan_store, set_plan_store
from repro.scene.store import active_scene_store, set_scene_store
from repro.session.cache import ResultCache, spec_key
from repro.session.spec import RunSpec
from repro.stats.metrics import SceneResult

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


class ExecutorError(ValueError):
    """Raised for unknown executor names or malformed shard specs."""


#: ``on_result(spec, result, cached)`` — fired once per completed
#: cell, in grid order; ``cached`` is True for a cache hit.
ResultCallback = Callable[[RunSpec, SceneResult, bool], None]


@runtime_checkable
class SweepExecutor(Protocol):
    """Where a sweep's cells execute.

    ``run`` receives the full grid (specs in deterministic grid order)
    and returns one result slot per spec, aligned by index; a slot is
    ``None`` only when the executor deliberately skipped the cell (the
    shard backend skips cells other shards own).  Cache lookups and
    stores are the executor's responsibility so a backend can overlap
    them with execution however it likes.
    """

    #: Registry name (``serial``/``process``/``shard``/...).
    name: str

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: Optional[ResultCache] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[SceneResult]]:
        ...


def _execute_spec(spec: RunSpec) -> SceneResult:
    """Top-level worker so ``ProcessPoolExecutor`` can pickle it."""
    return spec.execute()


def _init_worker(
    reuse_flag: bool,
    store_root: Optional[str],
    plan_root: Optional[str] = None,
) -> None:
    """Pool-worker initializer: inherit the parent's reuse flag and
    compiled scene/plan stores.  The stores travel as directory paths
    (a :class:`~repro.scene.store.SceneStore` /
    :class:`~repro.plan.store.PlanStore` holds no picklable state worth
    shipping), so each worker opens its own handle on the shared
    directory and loads — rather than rebuilds — every workload point
    (and every characterised work plan) another process already
    compiled."""
    set_reuse(reuse_flag)
    set_scene_store(store_root)
    set_plan_store(plan_root)


def _lookup(
    specs: Sequence[RunSpec], cache: Optional[ResultCache]
) -> Tuple[List[Optional[SceneResult]], List[bool]]:
    """Per-spec cached results (``None`` on miss) and hit flags."""
    results: List[Optional[SceneResult]] = [None] * len(specs)
    hits = [False] * len(specs)
    if cache is not None:
        for index, spec in enumerate(specs):
            found = cache.get(spec)
            if found is not None:
                results[index] = found
                hits[index] = True
    return results, hits


class SerialExecutor:
    """In-process execution, one cell at a time, in grid order."""

    name = "serial"

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: Optional[ResultCache] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[SceneResult]]:
        results: List[Optional[SceneResult]] = []
        for spec in specs:
            cached = True
            result = None
            if cache is not None:
                with phase("cache"):
                    result = cache.get(spec)
            if result is None:
                cached = False
                result = _execute_spec(spec)
                if cache is not None:
                    with phase("cache"):
                        cache.put(spec, result)
            results.append(result)
            if on_result is not None:
                on_result(spec, result, cached)
        return results


class ProfilingSerialExecutor(SerialExecutor):
    """Serial execution capturing one :class:`PhaseProfile` per cell.

    Each cell runs under :func:`repro.profiling.capture`, so the phase
    timers inside the spec/engine/cache layers record into a fresh
    profile; :attr:`profiles` is aligned with the grid (one entry per
    spec, cache hits included — those show only ``cache`` time).
    Results are byte-identical to :class:`SerialExecutor`'s: timing
    never changes what executes.
    """

    name = "profile"

    def __init__(self) -> None:
        self.profiles: List[PhaseProfile] = []

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: Optional[ResultCache] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[SceneResult]]:
        results: List[Optional[SceneResult]] = []
        for spec in specs:
            profile = PhaseProfile()
            with capture(profile):
                cell = super().run([spec], cache=cache, on_result=on_result)
            self.profiles.append(profile)
            results.extend(cell)
        return results


class ProcessExecutor:
    """Cache misses fanned out over a ``ProcessPoolExecutor``.

    A numerically-identical port of the pool path ``Sweep.run(jobs=N)``
    used to hard-wire: hits resolve up front, misses ship to worker
    processes (scene construction stays memoised per process), and
    results — like ``on_result`` callbacks — are gathered in grid
    order, so exports are byte-identical to a serial run.  A single
    miss (or ``jobs=1``) short-circuits to in-process execution rather
    than paying pool start-up.
    """

    name = "process"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ExecutorError("jobs must be at least 1")
        self.jobs = int(jobs)

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: Optional[ResultCache] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[SceneResult]]:
        specs = list(specs)
        results, hits = _lookup(specs, cache)
        missing = [i for i, result in enumerate(results) if result is None]

        def gather(executed: Iterable[SceneResult]) -> None:
            produced = iter(executed)
            for index, spec in enumerate(specs):
                if results[index] is None:
                    result = next(produced)
                    if cache is not None:
                        cache.put(spec, result)
                    results[index] = result
                if on_result is not None:
                    on_result(spec, results[index], hits[index])

        to_run = [specs[i] for i in missing]
        if self.jobs == 1 or len(missing) <= 1:
            gather(map(_execute_spec, to_run))
        else:
            workers = min(self.jobs, len(missing))
            # Workers start with an empty per-process reuse cache (the
            # isolation contract); only the caller's on/off *flag* is
            # forwarded, so `reuse=False` sweeps stay reuse-free in the
            # pool too.  The active scene and plan stores (if any) are
            # forwarded as directory paths so every worker shares the
            # same on-disk compiled scenes and work plans.
            store = active_scene_store()
            plan_store = active_plan_store()
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(
                    reuse_enabled(),
                    str(store.root) if store is not None else None,
                    str(plan_store.root) if plan_store is not None else None,
                ),
            ) as pool:
                gather(pool.map(_execute_spec, to_run))
        return results


# ---------------------------------------------------------------------------
# Sharding: deterministic content-addressed grid partition
# ---------------------------------------------------------------------------


def parse_shard(shard: Union[str, Tuple[int, int]]) -> Tuple[int, int]:
    """``"I/N"`` (or an ``(I, N)`` pair) -> validated ``(index, count)``.

    Indices are 0-based: a two-way scatter is ``0/2`` on one host and
    ``1/2`` on the other.
    """
    if isinstance(shard, tuple):
        index, count = shard
    else:
        head, sep, tail = str(shard).partition("/")
        if not sep:
            raise ExecutorError(
                f"bad shard {shard!r}: expected INDEX/COUNT, e.g. 0/2"
            )
        try:
            index, count = int(head), int(tail)
        except ValueError:
            raise ExecutorError(
                f"bad shard {shard!r}: expected INDEX/COUNT, e.g. 0/2"
            ) from None
    if count < 1:
        raise ExecutorError(f"shard count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise ExecutorError(
            f"shard index {index} out of range for {count} shard(s) "
            f"(0-based: 0..{count - 1})"
        )
    return index, count


def shard_of(spec: RunSpec, shard_count: int) -> int:
    """The shard owning ``spec`` in an ``shard_count``-way partition.

    Keyed on the cell's stable content address (:func:`spec_key
    <repro.session.cache.spec_key>`), so membership is identical
    across machines, Python hash seeds and grid orderings — every spec
    lands in exactly one shard, and reordering or widening the grid
    never moves a cell between shards.
    """
    if shard_count < 1:
        raise ExecutorError(
            f"shard count must be at least 1, got {shard_count}"
        )
    return int(spec_key(spec), 16) % shard_count


MANIFEST_VERSION = 1

_MANIFEST_SUFFIX = ".manifest.json"


def grid_key(keys: Iterable[str]) -> str:
    """Stable fingerprint of one whole grid (its set of spec keys).

    Order-independent, so two hosts expanding the same sweep agree on
    it; distinct grids sharing one cache directory (the bench suite
    above all) get distinct manifests instead of clobbering each
    other's.
    """
    import hashlib

    canonical = ",".join(sorted(keys))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


@dataclass
class ShardManifest:
    """What one shard of a scattered sweep owned and skipped.

    Written next to the shard's cache entries so the coordinator can
    audit coverage before (and after) merging: ``owned`` carries the
    key plus human-readable identity of every cell this shard executed,
    ``skipped_keys`` the addresses it left to the other shards.  The
    filename embeds the :func:`grid_key` fingerprint, so several grids
    scattered into one cache directory keep one manifest each.
    """

    shard_index: int
    shard_count: int
    #: One ``{"key", "framework", "workload", "config_label"}`` dict
    #: per owned cell, in grid order.
    owned: List[Dict[str, object]] = field(default_factory=list)
    #: spec_keys of the grid cells other shards own, in grid order.
    skipped_keys: List[str] = field(default_factory=list)

    @property
    def grid_key(self) -> str:
        return grid_key([*self.owned_keys, *self.skipped_keys])

    @property
    def filename(self) -> str:
        return (
            f"shard-{self.shard_index}of{self.shard_count}"
            f"-{self.grid_key[:12]}{_MANIFEST_SUFFIX}"
        )

    @property
    def owned_keys(self) -> List[str]:
        return [str(entry["key"]) for entry in self.owned]

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": MANIFEST_VERSION,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "grid_key": self.grid_key,
            "total_specs": len(self.owned) + len(self.skipped_keys),
            "owned": self.owned,
            "skipped_keys": self.skipped_keys,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardManifest":
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"shard manifest from another schema version: "
                f"{data.get('version')!r}"
            )
        return cls(
            shard_index=int(data["shard_index"]),  # type: ignore[arg-type]
            shard_count=int(data["shard_count"]),  # type: ignore[arg-type]
            owned=list(data.get("owned", ())),  # type: ignore[arg-type]
            skipped_keys=[
                str(key) for key in data.get("skipped_keys", ())
            ],
        )

    def write(self, root: Union[str, Path]) -> Path:
        """Write atomically (unique temp + replace), like cache entries:
        a shard process killed mid-write must not leave a torn manifest
        for the merge to propagate."""
        import os
        import tempfile

        path = Path(root) / self.filename
        text = json.dumps(self.to_dict(), indent=1) + "\n"
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(root), prefix=".manifest-", suffix=".tmp"
        )
        try:
            with open(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            os.unlink(temp_name)
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def shard_manifest_paths(root: Union[str, Path]) -> List[Path]:
    """Every shard-manifest file under a cache directory, sorted."""
    return sorted(
        path
        for path in Path(root).glob(f"*{_MANIFEST_SUFFIX}")
        if path.is_file()
    )


def load_shard_manifests(root: Union[str, Path]) -> List[ShardManifest]:
    """Every shard manifest under a cache directory, grid then shard
    order.  Unreadable files raise — callers auditing untrusted
    directories should load :func:`shard_manifest_paths` one by one.
    """
    manifests = [
        ShardManifest.load(path) for path in shard_manifest_paths(root)
    ]
    manifests.sort(key=lambda m: (m.grid_key, m.shard_count, m.shard_index))
    return manifests


class ShardExecutor:
    """One deterministic slice of the grid; the scatter half of a sweep.

    Executes (through ``inner`` — serial by default, a
    :class:`ProcessExecutor` when built with ``jobs > 1``) only the
    cells :func:`shard_of` assigns to ``shard_index``, returns ``None``
    slots for the rest, and — when a cache is in play — writes a
    :class:`ShardManifest` of owned vs. skipped keys into the cache
    directory so the merge half can audit coverage.
    """

    name = "shard"

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        inner: Optional[SweepExecutor] = None,
    ) -> None:
        self.shard_index, self.shard_count = parse_shard(
            (shard_index, shard_count)
        )
        self.inner: SweepExecutor = inner or SerialExecutor()

    def run(
        self,
        specs: Sequence[RunSpec],
        cache: Optional[ResultCache] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[SceneResult]]:
        specs = list(specs)
        owned_indices = [
            index
            for index, spec in enumerate(specs)
            if shard_of(spec, self.shard_count) == self.shard_index
        ]
        inner_results = self.inner.run(
            [specs[index] for index in owned_indices],
            cache=cache,
            on_result=on_result,
        )
        results: List[Optional[SceneResult]] = [None] * len(specs)
        for index, result in zip(owned_indices, inner_results):
            results[index] = result
        if cache is not None:
            self.manifest_for(specs).write(cache.root)
        return results

    def manifest_for(self, specs: Sequence[RunSpec]) -> ShardManifest:
        """The manifest this shard records for ``specs`` (grid order)."""
        manifest = ShardManifest(self.shard_index, self.shard_count)
        for spec in specs:
            key = spec_key(spec)
            if shard_of(spec, self.shard_count) == self.shard_index:
                manifest.owned.append(
                    {
                        "key": key,
                        "framework": spec.framework,
                        "workload": spec.workload,
                        "config_label": spec.config_label,
                    }
                )
            else:
                manifest.skipped_keys.append(key)
        return manifest


# ---------------------------------------------------------------------------
# Registry: backends selectable by name
# ---------------------------------------------------------------------------

#: name -> factory(jobs, shard) building a configured executor.
_EXECUTORS: Dict[
    str, Callable[[int, Optional[Tuple[int, int]]], SweepExecutor]
] = {}


def register_executor(
    name: str,
    factory: Callable[[int, Optional[Tuple[int, int]]], SweepExecutor],
) -> None:
    """Register an executor factory under ``name``.

    ``factory(jobs, shard)`` receives the sweep's worker count and the
    parsed ``(index, count)`` shard slice (``None`` when unsharded).
    Duplicate names are rejected so a plug-in cannot silently shadow a
    built-in backend.
    """
    if name in _EXECUTORS:
        raise ExecutorError(f"executor {name!r} already registered")
    _EXECUTORS[name] = factory


def executor_names() -> List[str]:
    """Registered backend names, in registration order."""
    return list(_EXECUTORS)


def _reject_shard(name: str, shard: Optional[Tuple[int, int]]) -> None:
    if shard is not None:
        raise ExecutorError(
            f"executor {name!r} does not shard; drop shard= or select "
            "the 'shard' executor"
        )


def _build_serial(
    jobs: int, shard: Optional[Tuple[int, int]]
) -> SweepExecutor:
    _reject_shard("serial", shard)
    return SerialExecutor()


def _build_process(
    jobs: int, shard: Optional[Tuple[int, int]]
) -> SweepExecutor:
    _reject_shard("process", shard)
    return ProcessExecutor(jobs)


def _build_profile(
    jobs: int, shard: Optional[Tuple[int, int]]
) -> SweepExecutor:
    _reject_shard("profile", shard)
    if jobs > 1:
        raise ExecutorError(
            "the profile executor is serial; wall-clock phase timings "
            "from parallel workers would not be comparable"
        )
    return ProfilingSerialExecutor()


def _build_shard(
    jobs: int, shard: Optional[Tuple[int, int]]
) -> SweepExecutor:
    if shard is None:
        raise ExecutorError(
            "the shard executor needs a slice: pass shard='I/N' "
            "(e.g. Sweep.run(executor='shard', shard='0/2') or "
            "oovr sweep --shard 0/2)"
        )
    inner = ProcessExecutor(jobs) if jobs > 1 else SerialExecutor()
    return ShardExecutor(*shard, inner=inner)


def _build_remote(
    jobs: int, shard: Optional[Tuple[int, int]]
) -> SweepExecutor:
    # The service layer imports this module, so resolve it lazily; the
    # daemon URL comes from $OOVR_SERVER (the CLI's --server constructs
    # a RemoteExecutor instance directly instead).
    _reject_shard("remote", shard)
    from repro.service.client import RemoteExecutor

    return RemoteExecutor.from_env()


register_executor("serial", _build_serial)
register_executor("process", _build_process)
register_executor("profile", _build_profile)
register_executor("shard", _build_shard)
register_executor("remote", _build_remote)

#: The built-in backends (for help strings and error messages).
EXECUTOR_NAMES = tuple(executor_names())


def make_executor(
    executor: Optional[Union[str, SweepExecutor]] = None,
    jobs: int = 1,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
) -> SweepExecutor:
    """Resolve a backend: instance, registered name, or inferred.

    - an executor *instance* passes through unchanged (it already
      carries its own configuration, so ``jobs`` is ignored and
      combining it with ``shard=`` is an error);
    - a *name* looks up the registry (:func:`register_executor`);
    - ``None`` infers the classic behaviour: ``shard`` given ->
      ``shard``, ``jobs > 1`` -> ``process``, else ``serial``.
    """
    if jobs < 1:
        raise ExecutorError("jobs must be at least 1")
    parsed = parse_shard(shard) if shard is not None else None
    if executor is not None and not isinstance(executor, str):
        if parsed is not None:
            raise ExecutorError(
                "cannot combine shard= with an executor instance; "
                "construct ShardExecutor(index, count, inner=...) directly"
            )
        return executor
    if executor is None:
        if parsed is not None:
            executor = "shard"
        else:
            executor = "process" if jobs > 1 else "serial"
    try:
        factory = _EXECUTORS[executor]
    except KeyError:
        raise ExecutorError(
            f"unknown executor {executor!r}; "
            f"have {sorted(_EXECUTORS)}"
        ) from None
    return factory(jobs, parsed)


def iter_shards(shard_count: int) -> Iterator[ShardExecutor]:
    """All ``shard_count`` slices (an in-process scatter, for tests)."""
    if shard_count < 1:
        raise ExecutorError(
            f"shard count must be at least 1, got {shard_count}"
        )
    for index in range(shard_count):
        yield ShardExecutor(index, shard_count)
