"""Scene-level energy roll-ups and cross-framework comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.energy.model import EnergyModel, FrameEnergy
from repro.stats.metrics import SceneResult, geomean

__all__ = ["SceneEnergy", "compare_frameworks", "scene_energy"]


@dataclass(frozen=True)
class SceneEnergy:
    """Steady-state per-frame energy for one scene run."""

    framework: str
    workload: str
    per_frame: FrameEnergy

    @property
    def millijoules_per_frame(self) -> float:
        return self.per_frame.millijoules


def scene_energy(
    result: SceneResult,
    model: EnergyModel | None = None,
) -> SceneEnergy:
    """Average steady-state frame energy of a scene run.

    The distribution engine's static power is charged only for OO-VR
    runs (the other schemes do not have the hardware).
    """
    model = model or EnergyModel()
    engine_active = result.framework == "oo-vr"
    frames = result.steady_frames
    energies = [model.frame_energy(f, engine_active) for f in frames]
    count = len(energies)
    mean = FrameEnergy(
        link_joules=sum(e.link_joules for e in energies) / count,
        dram_joules=sum(e.dram_joules for e in energies) / count,
        compute_joules=sum(e.compute_joules for e in energies) / count,
        engine_joules=sum(e.engine_joules for e in energies) / count,
    )
    return SceneEnergy(
        framework=result.framework, workload=result.workload, per_frame=mean
    )


def compare_frameworks(
    results_by_framework: Mapping[str, Mapping[str, SceneResult]],
    model: EnergyModel | None = None,
) -> Dict[str, Dict[str, float]]:
    """Geomean per-frame energy (mJ) by framework, with breakdowns.

    ``results_by_framework`` maps framework name -> workload -> result
    (the shape :func:`repro.experiments.runner.run_framework_suite`
    produces).  Returns ``{framework: {component: mJ}}`` with a
    ``total`` entry per framework.
    """
    model = model or EnergyModel()
    out: Dict[str, Dict[str, float]] = {}
    for framework, results in results_by_framework.items():
        components: Dict[str, List[float]] = {
            "link": [],
            "dram": [],
            "compute": [],
            "engine": [],
            "total": [],
        }
        for result in results.values():
            energy = scene_energy(result, model).per_frame
            components["link"].append(energy.link_joules * 1e3)
            components["dram"].append(energy.dram_joules * 1e3)
            components["compute"].append(energy.compute_joules * 1e3)
            components["engine"].append(energy.engine_joules * 1e3)
            components["total"].append(energy.millijoules)
        out[framework] = {
            key: geomean(values) if any(v > 0 for v in values) else 0.0
            for key, values in components.items()
        }
    return out
