"""The per-frame energy model.

Constants come from the sources the paper itself cites or quotes:

- inter-GPM link: 10 pJ/bit for on-board (organic substrate) links and
  250 pJ/bit across nodes (Section 6.2, quoting the MCM-GPU paper);
- DRAM access: ~7 pJ/bit class HBM-era access energy, expressed as
  56 pJ/byte (HBM is the local-memory technology the paper assumes for
  its 1 TB/s local bandwidth);
- SM compute: a flat energy-per-busy-cycle per GPM derived from the
  paper's GTX 1080 reference point (180 W TDP, 1.6 GHz boost, the bulk
  spent in SMs) scaled to one GPM's share;
- distribution engine: the 0.3 W / 960 bits overhead of Section 5.4,
  charged for the whole frame duration when the engine is active.

Absolute joules are *estimates*; what the experiments read off the
model is the **relative** energy of schemes on identical frames, which
depends only on the counters (bytes moved, cycles busy) that the
simulator measures directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.stats.metrics import FrameResult

__all__ = [
    "EnergyConstants",
    "EnergyModel",
    "FrameEnergy",
    "IntegrationPoint",
]


class IntegrationPoint(enum.Enum):
    """How the GPMs are integrated — sets the link energy per bit."""

    ON_BOARD = "board"
    CROSS_NODE = "nodes"

    @property
    def picojoules_per_bit(self) -> float:
        return 10.0 if self is IntegrationPoint.ON_BOARD else 250.0


@dataclass(frozen=True)
class EnergyConstants:
    """Tunable energy coefficients (defaults per the module docstring)."""

    link_pj_per_bit: float = 10.0
    dram_pj_per_byte: float = 56.0
    sm_pj_per_busy_cycle: float = 28_000.0
    rop_pj_per_pixel: float = 150.0
    engine_static_watts: float = 0.3

    def __post_init__(self) -> None:
        for name in (
            "link_pj_per_bit",
            "dram_pj_per_byte",
            "sm_pj_per_busy_cycle",
            "rop_pj_per_pixel",
            "engine_static_watts",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @classmethod
    def for_integration(cls, point: IntegrationPoint) -> "EnergyConstants":
        """Defaults with the link cost of ``point``."""
        return cls(link_pj_per_bit=point.picojoules_per_bit)


@dataclass(frozen=True)
class FrameEnergy:
    """Energy breakdown for one frame, in joules."""

    link_joules: float
    dram_joules: float
    compute_joules: float
    engine_joules: float

    @property
    def total_joules(self) -> float:
        return (
            self.link_joules
            + self.dram_joules
            + self.compute_joules
            + self.engine_joules
        )

    @property
    def millijoules(self) -> float:
        return self.total_joules * 1e3

    def fraction_of(self, component: str) -> float:
        """Share of the total taken by one component ('link', ...)."""
        value = getattr(self, f"{component}_joules")
        total = self.total_joules
        return value / total if total > 0 else 0.0


class EnergyModel:
    """Folds a :class:`~repro.stats.metrics.FrameResult` into joules.

    Parameters
    ----------
    constants:
        Energy coefficients; defaults to on-board integration.
    clock_hz:
        GPM clock, used to convert the frame's cycle count into the
        seconds the engine's static power integrates over.
    """

    def __init__(
        self,
        constants: EnergyConstants | None = None,
        clock_hz: float = 1e9,
    ) -> None:
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        self.constants = constants or EnergyConstants()
        self.clock_hz = clock_hz

    def frame_energy(
        self,
        frame: FrameResult,
        engine_active: bool = False,
    ) -> FrameEnergy:
        """Energy of one frame; ``engine_active`` charges the 0.3 W
        distribution engine for the frame's duration (OO-VR only)."""
        c = self.constants
        link = frame.inter_gpm_bytes * 8.0 * c.link_pj_per_bit * 1e-12
        dram = sum(frame.dram_bytes) * c.dram_pj_per_byte * 1e-12
        compute = (
            sum(frame.gpm_busy_cycles) * c.sm_pj_per_busy_cycle * 1e-12
        )
        engine = 0.0
        if engine_active:
            engine = c.engine_static_watts * frame.cycles / self.clock_hz
        return FrameEnergy(
            link_joules=link,
            dram_joules=dram,
            compute_joules=compute,
            engine_joules=engine,
        )

    def link_energy_by_type(
        self, frame: FrameResult
    ) -> Mapping[str, float]:
        """Joules of link energy per traffic type (texture, z-test, ...)."""
        per_bit = self.constants.link_pj_per_bit * 1e-12
        return {
            traffic.value: nbytes * 8.0 * per_bit
            for traffic, nbytes in frame.traffic.by_type.items()
        }
