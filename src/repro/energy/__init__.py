"""Energy and power accounting.

Section 6.2 of the paper argues OO-VR's traffic reduction is also an
energy win ("10pj/bit for board or 250pj/bit for nodes based on
different integration technologies"), and Section 5.4 prices the added
distribution engine at 0.3 W / 0.59 mm² via McPAT.  This package turns
those arguments into a measurable model:

- :mod:`repro.energy.model` — per-component energy constants
  (inter-GPM link, DRAM access, SM compute, ROP output) and the
  :class:`EnergyModel` that folds a frame's byte/cycle counters into a
  :class:`FrameEnergy` breakdown;
- :mod:`repro.energy.report` — scene-level roll-ups and the
  framework-comparison report behind the energy bench.
"""

from repro.energy.model import (
    EnergyConstants,
    EnergyModel,
    FrameEnergy,
    IntegrationPoint,
)
from repro.energy.report import SceneEnergy, compare_frameworks, scene_energy

__all__ = [
    "EnergyConstants",
    "EnergyModel",
    "FrameEnergy",
    "IntegrationPoint",
    "SceneEnergy",
    "compare_frameworks",
    "scene_energy",
]
