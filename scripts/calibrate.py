"""Calibration harness: print the headline averages vs. paper targets.

Run with ``python scripts/calibrate.py [--fast]``.  Used during
development to tune the CostModel constants; the chosen values are
frozen in ``repro.config`` and asserted by ``tests/test_shapes.py``.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.runner import FAST, FULL, ExperimentConfig
from repro.experiments import figures


def main() -> None:
    experiment = FAST if "--fast" in sys.argv else ExperimentConfig(
        draw_scale=0.3, num_frames=3
    )
    t0 = time.time()

    fig4 = figures.fig04_bandwidth_sensitivity(experiment)
    print("fig4  (paper 1/.95/.78/.58/.35):",
          " ".join(f"{fig4.average(c):.2f}" for c in fig4.series))

    fig7 = figures.fig07_afr(experiment)
    print(f"fig7  overall (paper 1.67): {fig7.average('overall perf'):.2f}  "
          f"latency (paper 1.59): {fig7.average('frame latency'):.2f}")

    fig8 = figures.fig08_sfr_performance(experiment)
    print("fig8  (paper 1.28/1.03/1.60):",
          " ".join(f"{fig8.average(c):.2f}" for c in fig8.series))

    fig9 = figures.fig09_sfr_traffic(experiment)
    print("fig9  (paper 1.50/1.44/0.60):",
          " ".join(f"{fig9.average(c):.2f}" for c in fig9.series))

    fig10 = figures.fig10_load_balance(experiment)
    print(f"fig10 balance (paper ~1.4, max 2.2): "
          f"{fig10.average('best-to-worst'):.2f}")

    fig15 = figures.fig15_oovr_speedup(experiment)
    print("fig15 (paper obj 1.60 / frame 0.63 / 1tb 1.55 / app 1.99 / oovr ~3):",
          " ".join(f"{fig15.average(c):.2f}" for c in fig15.series))

    fig16 = figures.fig16_oovr_traffic(experiment)
    print("fig16 (paper 1/0.60/0.24):",
          " ".join(f"{fig16.average(c):.2f}" for c in fig16.series))

    print(f"[{time.time() - t0:.1f}s]")


if __name__ == "__main__":
    main()
