"""Extension: ATW frame pacing (Section 2.2 / 4.1's motion-anomaly case).

Paces each scheme's single-frame latencies through a 90 Hz HMD
compositor.  The Table 3 games render a few Mpixel per frame; Table 1's
stereo-VR panel needs 116.64 Mpixel (58.32 per eye x 2), so each
measured latency is first scaled by the panel-to-workload pixel ratio —
"this workload's engine, at VR panel resolution".  At that scale the
schemes separate: the baseline misses nearly every vsync, OO-VR meets
several times more of them, and AFR's high throughput cannot rescue its
single-frame latency (the paper's judder argument, measured).

The study is one declarative (scheme x workload) Sweep
(:func:`repro.extensions.atw.atw_study`) memoised through the shared
bench cache.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.extensions.atw import ATWConfig, atw_study
from repro.stats.metrics import geomean

SCHEMES = ("baseline", "object", "afr", "oo-vr")
#: Table 1: 58.32 Mpixel per eye, two eyes.
VR_PANEL_PIXELS = 58.32e6 * 2
ATW = ATWConfig(refresh_hz=90.0, eye_width=1280, eye_height=1024)


def run_atw():
    reports_by_scheme = atw_study(
        SCHEMES,
        BENCH,
        atw=ATW,
        panel_pixels=VR_PANEL_PIXELS,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    rows = []
    fresh_rates = {}
    for scheme, reports in reports_by_scheme.items():
        fresh = geomean([max(r.fresh_rate, 1e-6) for r in reports])
        worst = max(r.worst_lag_vsyncs for r in reports)
        latency = geomean([r.mean_latency_ms for r in reports])
        fresh_rates[scheme] = fresh
        rows.append(
            f"{scheme:<10}{latency:>14.1f}{100 * fresh:>10.1f}%"
            f"{100 * (1 - fresh):>10.1f}%{worst:>12d}"
        )
    header = (
        f"{'scheme':<10}{'VR latency ms':>14}{'fresh':>11}{'judder':>11}"
        f"{'worst lag':>12}"
    )
    text = "\n".join(
        [
            "Extension E2: ATW frame pacing at 90 Hz, latencies scaled to",
            f"Table 1's {VR_PANEL_PIXELS / 1e6:.1f} Mpixel stereo panel "
            "(geomean over workloads)",
            header,
            *rows,
        ]
    )
    return text, fresh_rates


def test_ext_atw(bench_once):
    text, fresh = bench_once(run_atw)
    record_output("ext_atw", text)
    # OO-VR must deliver more fresh frames than object-level SFR, which
    # beats the baseline; AFR's throughput cannot rescue its latency.
    assert fresh["oo-vr"] > fresh["baseline"]
    assert fresh["oo-vr"] >= fresh["object"]
    assert fresh["oo-vr"] > fresh["afr"]
