"""Extension: bandwidth-asymmetry (HBM generation) scaling, Section 6.3.

The paper's conclusion claims OO-VR "can potentially benefit the future
larger multi-GPU scenario with ever increasing asymmetric bandwidth
between local and remote memory".  This bench holds the 64 GB/s link
fixed and sweeps local DRAM bandwidth from link-parity (64 GB/s — a
flat machine with no NUMA asymmetry) up to HBM3e-class 4 TB/s: OO-VR's
advantage over the baseline should grow with the asymmetry and
saturate once compute binds.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.extensions.hbm import HBM_GENERATIONS, local_bandwidth_sweep

SCHEMES = ("baseline", "object", "oo-vr")
WORKLOADS = ("DM3-1280", "HL2-1280", "WE")


def run_hbm():
    table = local_bandwidth_sweep(
        schemes=SCHEMES,
        workloads=WORKLOADS,
        draw_scale=BENCH.draw_scale,
        num_frames=BENCH.num_frames,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    lines = [
        "Extension E4: speedup vs (baseline, 1 TB/s local DRAM) by "
        "local:link bandwidth asymmetry",
        "link bandwidth fixed at 64 GB/s throughout",
        f"{'local DRAM':<18}" + "".join(f"{s:>12}" for s in SCHEMES),
    ]
    for generation, row in table.items():
        lines.append(
            f"{generation:<18}" + "".join(f"{row[s]:>12.2f}" for s in SCHEMES)
        )
    return "\n".join(lines), table


def test_ext_hbm(bench_once):
    text, table = bench_once(run_hbm)
    record_output("ext_hbm", text)
    # The advantage of OO-VR over the baseline grows with the
    # local:link asymmetry (flat machine -> paper's HBM machine).
    flat = table["64 GB/s (=link)"]
    paper = table["1 TB/s (paper)"]
    assert paper["oo-vr"] / paper["baseline"] > flat["oo-vr"] / flat["baseline"]
    # And saturates rather than regresses beyond the paper's point.
    future = table["4 TB/s"]
    assert future["oo-vr"] >= paper["oo-vr"] * 0.99
