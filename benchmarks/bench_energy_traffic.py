"""Extension: per-frame energy (Section 6.2's pJ/bit argument).

Two reports:

- the paper's original argument — inter-GPM *link* energy at the two
  integration points it quotes (10 pJ/bit on-board, 250 pJ/bit across
  nodes), where OO-VR's 76% traffic reduction is a direct saving;
- the full-system view from :mod:`repro.energy` — link + DRAM +
  compute + the 0.3 W distribution engine, showing the engine's static
  cost is negligible next to the link energy it removes.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.energy import (
    EnergyConstants,
    EnergyModel,
    IntegrationPoint,
    compare_frameworks,
)
from repro.experiments.extensions import energy_report
from repro.experiments.runner import run_framework_suite

SCHEMES = ("baseline", "object", "oo-vr")


def run_energy():
    link_figure = energy_report(
        BENCH, cache=BENCH_CACHE, jobs=BENCH_JOBS, executor=BENCH_EXECUTOR
    )
    suites = {
        name: run_framework_suite(
            name,
            BENCH,
            cache=BENCH_CACHE,
            jobs=BENCH_JOBS,
            executor=BENCH_EXECUTOR,
        )
        for name in SCHEMES
    }
    board = compare_frameworks(
        suites, EnergyModel(EnergyConstants.for_integration(IntegrationPoint.ON_BOARD))
    )
    lines = [
        link_figure.to_text(),
        "",
        "full-system energy per frame (mJ, geomean, on-board integration):",
        f"{'scheme':<12}{'link':>9}{'dram':>9}{'compute':>9}{'engine':>9}{'total':>9}",
    ]
    for scheme in SCHEMES:
        row = board[scheme]
        lines.append(
            f"{scheme:<12}{row['link']:>9.2f}{row['dram']:>9.2f}"
            f"{row['compute']:>9.2f}{row['engine']:>9.4f}{row['total']:>9.2f}"
        )
    return "\n".join(lines), link_figure, board


def test_energy(bench_once):
    text, link_figure, board = bench_once(run_energy)
    record_output("energy", text)
    series = link_figure.series["10 pJ/bit (board)"]
    assert series["oo-vr"] < series["object"] < series["baseline"]
    # The distribution engine's static energy is far smaller than the
    # link energy OO-VR saves relative to the baseline.
    saved_link = board["baseline"]["link"] - board["oo-vr"]["link"]
    assert board["oo-vr"]["engine"] < saved_link
