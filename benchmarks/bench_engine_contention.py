"""Extension: engine-contention study (analytic vs discrete-event).

The analytic engine — the model every reproduced figure uses — prices
work units in isolation, so concurrent flows never contend for a shared
link or a peer's DRAM in time.  This bench replays the same schedules
through the discrete-event engine (``<scheme>:engine=event``), which
time-shares each wire's and each DRAM stack's bandwidth across the
flows active in a window — staging/PA copies and the composition
barrier included — and reports the **over-credit factor**
(event / analytic single-frame cycles), plus a phase-resolved view
splitting the factor into its render-window and composition-barrier
parts.

Expected shape: ~1.0 on the paper's dedicated pairwise fabric (its
"no interference" assumption really holds), a 2-3x penalty for the
baseline on a shared central switch, and a far smaller one for OO-VR —
the bytes its locality removes are exactly the bytes that would have
queued on the contended wire.  The phase view attributes OO-VR's
residual penalty: how much of the "free" PA overlap congestion claws
back in the render window, and how much the DHC all-pairs scatter
queues at the barrier.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.experiments.engines import (
    CONTENTION_BANDWIDTHS_GB,
    CONTENTION_FRAMEWORKS,
    CONTENTION_PHASES,
    engine_contention_grid,
    engine_contention_phases,
    engine_contention_study,
)

#: Three representative workloads keep the full-scale grid tractable
#: (frameworks x engines x bandwidths x workloads cells).
WORKLOADS = ("DM3-1280", "HL2-1280", "WE")


def run_engine_contention():
    # One grid execution feeds both views (and persists in the shared
    # bench cache for the other studies).
    results = engine_contention_grid(
        BENCH,
        workloads=WORKLOADS,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    figure = engine_contention_study(
        BENCH,
        workloads=WORKLOADS,
        results=results,
    )
    phases = engine_contention_phases(
        BENCH,
        workloads=WORKLOADS,
        results=results,
    )
    text = "\n".join(
        [
            "Extension E6: analytic over-credit under congestion "
            "(event / analytic cycles)",
            f"workloads: {', '.join(WORKLOADS)} (geomean)",
            figure.to_text(),
            "",
            phases.to_text(),
        ]
    )
    return text, figure, phases


def test_engine_contention(bench_once):
    text, figure, phases = bench_once(run_engine_contention)
    record_output("engine_contention", text)
    series = figure.series
    cheap = f"{CONTENTION_BANDWIDTHS_GB[-1]:.0f}GB/s"
    paper = f"{CONTENTION_BANDWIDTHS_GB[0]:.0f}GB/s"
    assert set(series) == set(CONTENTION_FRAMEWORKS)
    # The phase-resolved breakdown carries one column per (framework,
    # phase) over the same bandwidth rows.
    assert set(phases.series) == {
        f"{framework} [{phase}]"
        for framework in CONTENTION_FRAMEWORKS
        for phase in CONTENTION_PHASES
    }
    assert all(
        set(row) == set(series[CONTENTION_FRAMEWORKS[0]])
        for row in phases.series.values()
    )
    # The discrete-event replay never undercuts the analytic price by
    # more than the documented full-duplex divergence (bidirectional
    # per-peer traffic drains in parallel where the analytic roll-up
    # serialises it); beyond that, contention only slows frames down.
    for row in series.values():
        for factor in row.values():
            assert factor >= 0.98
    # On the paper's dedicated pairwise fabric the "no interference"
    # assumption holds: the analytic model is nearly exact.
    assert abs(series["baseline"][paper] - 1.0) < 0.1
    # On a shared switch the baseline's remote streams queue up, and
    # the analytic model over-credits it far more than it does OO-VR.
    assert (
        series["baseline:topo=switch"][cheap]
        > series["oo-vr:topo=switch"][cheap] + 0.05
    )
    # OO-VR's traffic reduction keeps its congestion penalty well under
    # the baseline's even where the fabric is worst.  (The margin is
    # smaller than it once looked: full engine coverage now prices the
    # DHC barrier's all-pairs scatter through the shared switch too.)
    assert (
        series["oo-vr:topo=switch"][cheap]
        < 0.8 * series["baseline:topo=switch"][cheap]
    )
    # The phase view attributes it: OO-VR's *render* window is nearly
    # immune (the bytes PA moves off the critical path stay off it),
    # while what penalty remains is concentrated in the composition
    # barrier — DHC queues on a shared switch.
    assert (
        phases.series["oo-vr:topo=switch [render]"][cheap]
        < 0.5 * phases.series["baseline:topo=switch [render]"][cheap]
    )
    # The baseline has no composition barrier (interleaved writes): its
    # composition factor is exactly the 1.0 placeholder, while OO-VR's
    # DHC scatter does queue on the shared switch.
    assert phases.series["baseline [composition]"][cheap] == 1.0
    assert phases.series["oo-vr:topo=switch [composition]"][cheap] >= 1.0
