"""Extension: engine-contention study (analytic vs discrete-event).

The analytic engine — the model every reproduced figure uses — prices
work units in isolation, so concurrent flows never contend for a shared
link or a peer's DRAM in time.  This bench replays the same schedules
through the discrete-event engine (``<scheme>:engine=event``), which
time-shares each wire's and each DRAM stack's bandwidth across the
flows active in a window, and reports the **over-credit factor**
(event / analytic single-frame cycles).

Expected shape: ~1.0 on the paper's dedicated pairwise fabric (its
"no interference" assumption really holds), a 2-3x penalty for the
baseline on a shared central switch, and a far smaller one for OO-VR —
the bytes its locality removes are exactly the bytes that would have
queued on the contended wire.
"""

from benchmarks.conftest import BENCH, BENCH_CACHE, record_output
from repro.experiments.engines import (
    CONTENTION_BANDWIDTHS_GB,
    CONTENTION_FRAMEWORKS,
    engine_contention_study,
)

#: Three representative workloads keep the full-scale grid tractable
#: (frameworks x engines x bandwidths x workloads cells).
WORKLOADS = ("DM3-1280", "HL2-1280", "WE")


def run_engine_contention():
    figure = engine_contention_study(
        BENCH,
        workloads=WORKLOADS,
        cache=BENCH_CACHE,
    )
    text = "\n".join(
        [
            "Extension E6: analytic over-credit under congestion "
            "(event / analytic cycles)",
            f"workloads: {', '.join(WORKLOADS)} (geomean)",
            figure.to_text(),
        ]
    )
    return text, figure


def test_engine_contention(bench_once):
    text, figure = bench_once(run_engine_contention)
    record_output("engine_contention", text)
    series = figure.series
    cheap = f"{CONTENTION_BANDWIDTHS_GB[-1]:.0f}GB/s"
    paper = f"{CONTENTION_BANDWIDTHS_GB[0]:.0f}GB/s"
    assert set(series) == set(CONTENTION_FRAMEWORKS)
    # The discrete-event replay never undercuts the analytic price by
    # more than the documented full-duplex divergence (bidirectional
    # per-peer traffic drains in parallel where the analytic roll-up
    # serialises it); beyond that, contention only slows frames down.
    for row in series.values():
        for factor in row.values():
            assert factor >= 0.98
    # On the paper's dedicated pairwise fabric the "no interference"
    # assumption holds: the analytic model is nearly exact.
    assert abs(series["baseline"][paper] - 1.0) < 0.1
    # On a shared switch the baseline's remote streams queue up, and
    # the analytic model over-credits it far more than it does OO-VR.
    assert (
        series["baseline:topo=switch"][cheap]
        > series["oo-vr:topo=switch"][cheap] + 0.05
    )
    # OO-VR's traffic reduction keeps its congestion penalty a
    # fraction of the baseline's even where the fabric is worst.
    assert (
        series["oo-vr:topo=switch"][cheap]
        < 0.6 * series["baseline:topo=switch"][cheap]
    )
