"""Figure 15: single-frame speedup of every design point vs. baseline.

The paper's mutually consistent numbers: OO_APP ~2x baseline, OO-VR
~1.5-1.6x on top of OO_APP and ~2x over object-level SFR.
"""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig15(bench_once):
    result = bench_once(figures.fig15_oovr_speedup, BENCH)
    record_output("fig15", result.to_text())
    assert (
        result.average("OOVR")
        > result.average("OO_APP")
        > result.average("Object-Level")
        > 1.0
        > result.average("Frame-Level")
    )
