"""Shared benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at **full
workload scale** (Table 3 draw counts, 3 frames per scene) and

- prints the series the paper plots, next to the paper's reported
  values, and
- writes the same text to ``benchmarks/output/<name>.txt``.

``pytest-benchmark`` times one full regeneration per figure
(``pedantic(rounds=1)``): the numbers of interest are the figure's
values, not the wall-clock, but the timing documents simulation cost.

The harness rides on the Session/Sweep API: ``BENCH`` is the standard
:data:`repro.session.FULL` preset, the same grids ``oovr fig`` and
``oovr sweep`` execute.  The extension/ablation studies additionally
share :data:`BENCH_CACHE`, a :class:`repro.session.ResultCache` under
``benchmarks/output/cache``: cells common to several studies (the
baseline suite above all) execute once per bench session instead of
once per study, and a re-run regenerates figures from disk.  Note the
cache keys on the *spec*, not the simulator code — clear it
(``oovr cache clear benchmarks/output/cache``) after changing the
model to re-measure.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.session import FULL, ResultCache

#: Full-scale experiment preset used by every bench.
BENCH = FULL

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: RunSpec-keyed result store shared by the extension/ablation benches.
BENCH_CACHE = ResultCache(OUTPUT_DIR / "cache")


def record_output(name: str, text: str) -> None:
    """Print a figure's text and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def bench_once(benchmark):
    """Run a figure generator exactly once under the benchmark timer."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return run
