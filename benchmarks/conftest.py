"""Shared benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at **full
workload scale** (Table 3 draw counts, 3 frames per scene) and

- prints the series the paper plots, next to the paper's reported
  values, and
- writes the same text to ``benchmarks/output/<name>.txt``.

``pytest-benchmark`` times one full regeneration per figure
(``pedantic(rounds=1)``): the numbers of interest are the figure's
values, not the wall-clock, but the timing documents simulation cost.

The harness rides on the Session/Sweep API: ``BENCH`` is the standard
:data:`repro.session.FULL` preset, the same grids ``oovr fig`` and
``oovr sweep`` execute.  The extension/ablation studies additionally
share :data:`BENCH_CACHE`, a :class:`repro.session.ResultCache` under
``benchmarks/output/cache``: cells common to several studies (the
baseline suite above all) execute once per bench session instead of
once per study, and a re-run regenerates figures from disk.  Note the
cache keys on the *spec*, not the simulator code — clear it
(``oovr cache clear benchmarks/output/cache``) after changing the
model to re-measure.

Execution rides the pluggable executor layer
(:mod:`repro.session.executor`), steered by environment variables so
one bench invocation can be a slice of a cross-machine fleet:

- ``OOVR_BENCH_JOBS=8`` — fan cache misses over worker processes;
- ``OOVR_BENCH_SHARD=0/2`` — warm-only scatter mode: every grid
  executes just this host's deterministic slice (recording a shard
  manifest per cache), and each bench then *skips* instead of
  asserting — figure math is only meaningful on the whole grid;
- ``OOVR_BENCH_CACHE=DIR`` — per-host cache directory for scattered
  runs (default ``benchmarks/output/cache``).

The gather half: ``oovr cache merge benchmarks/output/cache HOST0
HOST1 ...`` folds the per-host directories together (``oovr cache
manifest`` audits coverage), after which an unsharded bench pass is
100 % hits and regenerates every figure from disk.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.session import FULL, ResultCache, make_executor

#: Full-scale experiment preset used by every bench.
BENCH = FULL

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: RunSpec-keyed result store shared by the extension/ablation benches
#: (``OOVR_BENCH_CACHE`` points scattered hosts at private directories).
BENCH_CACHE = ResultCache(
    os.environ.get("OOVR_BENCH_CACHE", OUTPUT_DIR / "cache")
)

#: Worker processes for every bench sweep (``OOVR_BENCH_JOBS``).
BENCH_JOBS = int(os.environ.get("OOVR_BENCH_JOBS", "1"))

#: This host's shard slice (``OOVR_BENCH_SHARD=I/N``), or None.
BENCH_SHARD = os.environ.get("OOVR_BENCH_SHARD")

#: The executor backend every cache-sharing bench hands to Sweep.run —
#: serial by default, process under OOVR_BENCH_JOBS, a shard slice
#: under OOVR_BENCH_SHARD.
BENCH_EXECUTOR = make_executor(jobs=BENCH_JOBS, shard=BENCH_SHARD)


def record_output(name: str, text: str) -> None:
    """Print a figure's text and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def bench_once(benchmark):
    """Run a figure generator exactly once under the benchmark timer.

    Under ``OOVR_BENCH_SHARD`` the generator runs for its cache side
    effects only — each sweep executes (and stores) this host's slice
    — and the test skips, so no figure text or assertion is ever
    produced from a partial grid.  Caveat: a bench chaining several
    grids stops at its first figure-math lookup of a cell another
    shard owns, so later grids in the same bench stay cold; ``oovr
    cache manifest`` on the merged directory shows exactly which grids
    each shard recorded, and the unsharded replay executes any cells
    still missing.
    """

    def run(func, *args, **kwargs):
        if BENCH_SHARD is not None:
            stores_before = BENCH_CACHE.stats.stores
            reached_end = True
            try:
                func(*args, **kwargs)
            except (KeyError, ValueError):
                # Figure math tripped on cells another shard owns;
                # every sweep reached before that point has already
                # executed and cached this host's slice.
                reached_end = False
            stored = BENCH_CACHE.stats.stores - stores_before
            coverage = (
                "all grids swept"
                if reached_end
                else "grids after the first cross-shard lookup stayed cold"
            )
            pytest.skip(
                f"OOVR_BENCH_SHARD={BENCH_SHARD}: stored {stored} "
                f"cell(s) of this host's slice at {BENCH_CACHE.root} "
                f"({coverage}); merge and re-run unsharded for figures"
            )
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return run
