"""Figure 17: sensitivity of the design points to link bandwidth."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig17(bench_once):
    result = bench_once(figures.fig17_link_bandwidth, BENCH)
    record_output("fig17", result.to_text())
    oovr = result.series["OOVR"]
    base = result.series["Baseline"]
    assert oovr["256GB/s"] / oovr["32GB/s"] < base["256GB/s"] / base["32GB/s"]
