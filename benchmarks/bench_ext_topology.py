"""Extension: link topology study (beyond the paper's dedicated links).

The paper assumes a fully connected fabric ("each GPM has 6 ports ...
intercommunication between two GPMs will not be interfered").  Rings
and central switches are what larger systems actually ship; this bench
measures each scheme on all three fabrics.  The expected shape: the
baseline degrades steeply on cheaper fabrics (every remote byte crosses
more contended wire), while OO-VR is nearly topology-insensitive —
locality is worth more when the fabric is worse.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.extensions.topology import Topology, topology_sweep

SCHEMES = ("baseline", "object", "oo-vr")
WORKLOADS = ("DM3-1280", "HL2-1280", "WE")


def run_topology():
    table = topology_sweep(
        schemes=SCHEMES,
        workloads=WORKLOADS,
        draw_scale=BENCH.draw_scale,
        num_frames=BENCH.num_frames,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    lines = [
        "Extension E3: speedup vs (baseline, fully-connected) by topology",
        f"workloads: {', '.join(WORKLOADS)} (geomean)",
        f"{'topology':<18}" + "".join(f"{s:>12}" for s in SCHEMES),
    ]
    for topology, row in table.items():
        lines.append(
            f"{topology:<18}" + "".join(f"{row[s]:>12.2f}" for s in SCHEMES)
        )
    return "\n".join(lines), table


def test_ext_topology(bench_once):
    text, table = bench_once(run_topology)
    record_output("ext_topology", text)
    ring = table[Topology.RING.value]
    full = table[Topology.FULLY_CONNECTED.value]
    # OO-VR keeps more of its fully-connected performance on a ring
    # than the baseline keeps of its own.
    assert ring["oo-vr"] / full["oo-vr"] >= ring["baseline"] / full["baseline"]
    # And on every topology OO-VR stays the fastest scheme.
    for row in table.values():
        assert row["oo-vr"] >= row["object"] >= row["baseline"] * 0.99
