"""Figure 9: SFR inter-GPM traffic (tile-V 1.50x, tile-H 1.44x, object 0.60x)."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig09(bench_once):
    result = bench_once(figures.fig09_sfr_traffic, BENCH)
    record_output("fig09", result.to_text())
    assert result.average("Tile-Level (V)") > 1.0
    assert result.average("Object-Level") < 0.8
