"""Section 3 / Figure 5 context: SMP vs. sequential stereo (~27% gain)."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_smp_validation(bench_once):
    result = bench_once(figures.smp_validation, BENCH)
    record_output("smp_validation", result.to_text())
    assert 1.1 <= result.average("SMP speedup") <= 1.6
