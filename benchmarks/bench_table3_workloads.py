"""Table 3: the five-game benchmark suite with measured statistics."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import tables


def test_table3(bench_once):
    text = bench_once(tables.table3_benchmarks, BENCH)
    record_output("table3", text)
    assert "Doom 3" in text and "1697" in text
