"""Micro-benchmarks of the simulator itself (not a paper figure).

Tracks the cost of the hot paths — draw characterisation, NUMA-resolved
unit execution, and a full OO-VR frame — so performance regressions in
the simulator are visible in CI, plus the dispatch overhead of each
sweep-executor backend (``BENCH_service_throughput.json``).
"""

import json
import threading
import time
from pathlib import Path

from benchmarks.conftest import BENCH, OUTPUT_DIR
from repro.frameworks.base import build_framework
from repro.experiments.runner import scene_for
from repro.gpu.system import MultiGPUSystem
from repro.pipeline.smp import SMPMode
from repro.service import RemoteExecutor, SweepWorker, serve
from repro.session import FAST, ResultCache, RunSpec, Sweep

GOLDEN_BASELINE = (
    Path(__file__).parent / "golden" / "cell_throughput_baseline.json"
)


def test_characterize_draw(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    draw = scene.frames[0].objects[0].multiview_draw()
    benchmark(fw.characterizer.characterize, draw, SMPMode.SIMULTANEOUS)


def test_execute_unit(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    unit = fw.characterizer.characterize(
        scene.frames[0].objects[0].multiview_draw()
    )
    system = MultiGPUSystem(fw.config)
    system.begin_frame()

    def run():
        system.execute_unit(unit, 0, fb_targets={0: 1.0})

    benchmark(run)


def test_oovr_full_frame(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("oo-vr")

    def run():
        return fw.render_frame(scene.frames[0], "HL2-1280")

    benchmark.pedantic(run, rounds=3, iterations=1)


def _best_seconds(fn, repeats=3):
    """Best-of-N wall time of ``fn()`` after one warm-up call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_cell_throughput():
    """Event-vs-analytic cells/sec, plus the batched-kernel trajectory.

    Three matrices, all emitted as
    ``benchmarks/output/BENCH_cell_throughput.json``:

    - ``engines`` — whole-cell rates (``RunSpec.execute()`` of the
      oo-vr HL2-1280 FULL cell) under the analytic and event engines,
      each with its speedup over the PR 7 seed pinned in
      ``benchmarks/golden/cell_throughput_baseline.json``.  The event
      entry carries the window-loop trajectory: a same-host A/B of the
      incremental loop against the retained scalar reference loop, and
      the loop's own counters (windows per frame, mean live rows per
      window, per-window wall cost) captured via the profiling layer;
    - ``hot_path_kernels`` — the per-cell hot-path kernels measured
      batched *and* through the retained scalar reference on the same
      machine, so the speedup column is an honest same-host A/B rather
      than a cross-machine ratio.  Kernels are measured with the reuse
      cache *disabled* — a memo hit would time dictionary lookups, not
      the kernels.  The raster front end (a fully-scissored
      5120-triangle draw, where batching rejects every face without
      entering Python) is the headline: it must clear 10x over the
      per-triangle reference walk;
    - ``scene_build`` — the vectorized scene generator against the
      retained scalar reference (both sides emit frames *and* batches,
      equality asserted field-for-field before timing, gate >= 3x),
      plus the compiled-scene store's cold/warm/absent whole-cell wall
      times with byte-identical results asserted first, and a
      ``plan_store`` block timing the compiled-plan store on the
      warm-scene fast cell — absent/cold/warm walls plus the profiled
      bind+price phase seconds, gated at a >= 2x phase speedup warm
      vs. absent (results again asserted identical before timing);
    - ``shared_workload_sweep`` — a 4-cell serial sweep whose cells all
      share one workload, run with the reuse cache on and off.  The
      CSVs are asserted byte-identical before either side is timed,
      then the reuse side must clear 1.5x — both sides same-host, so
      the ratio is machine-independent.

    The batched paths are asserted equal to their references before
    being timed — a fast wrong kernel must fail here, not ship a
    flattering number.
    """
    from repro import profiling
    from repro.engine.event import EventEngine
    from repro.reuse import reuse_scope

    baseline = json.loads(GOLDEN_BASELINE.read_text())["kernels"]

    # -- whole cells: analytic vs event engine --------------------------
    engines = {}
    for engine in ("analytic", "event"):
        spec = RunSpec(
            framework="oo-vr", workload="HL2-1280", engine=engine
        )
        spec.execute()  # warm the memoised scene before timing
        seconds = _best_seconds(spec.execute, repeats=2)
        rate = 1.0 / seconds
        engines[engine] = {
            "seconds": round(seconds, 4),
            "cells_per_sec": round(rate, 3),
            "speedup_vs_baseline": round(
                rate / baseline[f"cell_per_sec_{engine}"], 3
            ),
        }
        if engine != "event":
            continue
        # Same-host A/B: the incremental window loop against the
        # retained scalar reference loop (both under the same reuse
        # state, so the ratio isolates the loop itself).
        EventEngine.use_reference_loop = True
        try:
            reference_s = _best_seconds(spec.execute, repeats=2)
        finally:
            EventEngine.use_reference_loop = False
        engines[engine]["reference_loop_seconds"] = round(reference_s, 4)
        engines[engine]["incremental_loop_speedup"] = round(
            reference_s / seconds, 2
        )
        # Window-loop counters, straight from the engine's profiling
        # instrumentation (the same numbers `oovr run --profile
        # --engine event` prints).
        profile = profiling.PhaseProfile()
        with profiling.capture(profile):
            spec.execute()
        windows = profile.counters["event_windows"]
        loop_s = profile.counters["event_loop_s"]
        engines[engine]["window_loop"] = {
            "windows": int(windows),
            "windows_per_frame": round(windows / spec.num_frames, 1),
            "mean_live_rows_per_window": round(
                profile.counters["event_live_rows"] / windows, 2
            ),
            "loop_wall_s": round(loop_s, 4),
            "mean_window_cost_us": round(loop_s / windows * 1e6, 2),
        }

    kernels = {}

    # -- middleware grouping (Fig. 12 loop, memoised share vectors) -----
    from repro.core.middleware import OOMiddleware

    frame = scene_for("HL2-1280", BENCH).frames[0]
    middleware = OOMiddleware()
    seconds = _best_seconds(
        lambda: middleware.build_batches(frame.objects)
    )
    rate = len(frame.objects) / seconds
    kernels["middleware_grouping"] = {
        "objects_per_sec": round(rate, 1),
        "speedup_vs_baseline": round(
            rate / baseline["middleware_grouping_objects_per_sec"], 2
        ),
    }

    # -- frame characterisation: SoA pass vs per-draw scalar loop -------
    # Reuse is scoped off: a memo hit would time a dictionary lookup,
    # not the Eq. 3 pricing pass under test.
    fw = build_framework("baseline")
    draws = frame.multiview_draws()
    with reuse_scope(False):
        batched_units = fw.characterizer.characterize_frame(frame)
        scalar_units = tuple(
            fw.characterizer.characterize(draw) for draw in draws
        )
        assert batched_units == scalar_units
        batched_s = _best_seconds(
            lambda: fw.characterizer.characterize_frame(frame)
        )
        scalar_s = _best_seconds(
            lambda: [fw.characterizer.characterize(d) for d in draws]
        )
    kernels["characterize"] = {
        "batched_draws_per_sec": round(len(draws) / batched_s, 1),
        "reference_draws_per_sec": round(len(draws) / scalar_s, 1),
        "speedup_vs_reference": round(scalar_s / batched_s, 2),
        "speedup_vs_baseline": round(
            (len(draws) / batched_s)
            / baseline["characterize_draws_per_sec"],
            2,
        ),
    }

    # -- raster front end: batched cull vs per-triangle walk ------------
    import numpy as np

    from repro.render.framebuffer import FrameBuffer
    from repro.render.math3d import look_at, perspective
    from repro.render.mesh3d import make_icosphere
    from repro.render.raster import Rasterizer

    mesh = make_icosphere(radius=1.0, subdivisions=4)
    view = look_at(
        np.asarray([3.0, 2.5, 4.0]), np.zeros(3), np.asarray([0.0, 1.0, 0.0])
    )
    mvp = perspective(60.0, 1.0, 0.1, 50.0) @ view
    # Scissored to a corner the sphere never covers: the batched front
    # end rejects all 5120 faces in a handful of array ops, while the
    # reference walks them one by one — the per-cell hot path at its
    # purest.
    fb = FrameBuffer(640, 640)
    raster = Rasterizer(fb, scissor=(0, 0, 2, 2))
    assert raster.draw_mesh(mesh, mvp) == raster.draw_mesh_reference(
        mesh, mvp
    )
    batched_s = _best_seconds(lambda: raster.draw_mesh(mesh, mvp))
    scalar_s = _best_seconds(
        lambda: raster.draw_mesh_reference(mesh, mvp)
    )
    kernels["raster_front_end"] = {
        "batched_tris_per_sec": round(mesh.num_triangles / batched_s, 1),
        "reference_tris_per_sec": round(mesh.num_triangles / scalar_s, 1),
        "speedup_vs_reference": round(scalar_s / batched_s, 2),
        "speedup_vs_baseline": round(
            (mesh.num_triangles / batched_s)
            / baseline["raster_front_end_tris_per_sec"],
            2,
        ),
    }

    # The tentpole target: >= 10x on the per-cell hot path, measured as
    # a same-machine batched-vs-reference A/B.
    assert kernels["raster_front_end"]["speedup_vs_reference"] >= 10.0

    # -- scene construction: batched generator vs scalar reference ------
    # Both sides produce a Frame *and* its ObjectBatch (the reference
    # pays `from_objects` flattening, the batched path emits the batch
    # natively), and equality is asserted field-for-field before either
    # side is timed — the vectorized generator must be bit-identical,
    # not merely fast.
    import shutil
    import tempfile
    from dataclasses import replace as dataclass_replace

    from repro.scene.benchmarks import parse_workload
    from repro.scene.store import SceneStore, scene_store_scope
    from repro.scene.synthetic import SyntheticSceneGenerator
    from repro.session.spec import cached_scene

    bench_spec, width, height = parse_workload("HL2-1280")
    scene_profile = dataclass_replace(
        bench_spec.profile,
        num_objects=bench_spec.num_draws,
        width=width,
        height=height,
        name="HL2-1280",
    )

    def build_reference():
        generator = SyntheticSceneGenerator(scene_profile, seed=2019)
        scene = generator.make_scene_reference(num_frames=3)
        for scene_frame in scene.frames:
            scene_frame.object_batch  # flattening is part of the cost
        return scene

    def build_batched():
        generator = SyntheticSceneGenerator(scene_profile, seed=2019)
        return generator.make_scene(num_frames=3)

    reference_scene = build_reference()
    batched_scene = build_batched()
    assert reference_scene.frames == batched_scene.frames
    for ref_frame, fast_frame in zip(
        reference_scene.frames, batched_scene.frames
    ):
        ref_batch = ref_frame.object_batch
        fast_batch = fast_frame.object_batch
        for column in (
            "object_ids", "num_vertices", "num_triangles", "vertex_bytes",
            "vertex_buffer_bytes", "depth_complexity", "shader_complexity",
            "coverage", "left_area", "right_area", "has_left", "has_right",
            "tex_offsets", "tex_ids", "tex_sizes",
        ):
            assert np.array_equal(
                getattr(ref_batch, column), getattr(fast_batch, column)
            ), column
    objects_built = sum(len(f.objects) for f in batched_scene.frames)
    reference_s = _best_seconds(build_reference)
    batched_s = _best_seconds(build_batched)
    scene_build = {
        "workload": "HL2-1280 FULL x 3 frames (batch included both sides)",
        "objects": objects_built,
        "batched_objects_per_sec": round(objects_built / batched_s, 1),
        "reference_objects_per_sec": round(objects_built / reference_s, 1),
        "speedup_vs_reference": round(reference_s / batched_s, 2),
    }
    # The tentpole gate: the vectorized generator clears 3x over the
    # retained scalar reference on the same host.
    assert scene_build["speedup_vs_reference"] >= 3.0

    # Cold-vs-warm compiled-scene store, whole-cell wall time.  The
    # cold pass builds and persists, the warm pass mmap-loads; results
    # are asserted identical to a store-less cell before timing.
    store_dir = tempfile.mkdtemp(prefix="oovr-scene-bench-")
    try:
        store = SceneStore(store_dir)
        cell_spec = RunSpec(framework="oo-vr", workload="HL2-1280")

        def cell(active_store):
            cached_scene.cache_clear()
            if active_store is None:
                return cell_spec.execute()
            with scene_store_scope(active_store):
                return cell_spec.execute()

        plain_result = cell(None)
        start = time.perf_counter()
        cold_result = cell(store)
        cold_s = time.perf_counter() - start
        warm_result = cell(store)
        assert cold_result.to_dict() == plain_result.to_dict()
        assert warm_result.to_dict() == plain_result.to_dict()
        warm_s = _best_seconds(lambda: cell(store), repeats=2)
        no_store_s = _best_seconds(lambda: cell(None), repeats=2)
        profile = profiling.PhaseProfile()
        with profiling.capture(profile):
            cell(store)
        scene_s = profile.seconds.get("scene", 0.0)
        total_s = profile.total_seconds
        scene_build["store"] = {
            "cold_cell_seconds": round(cold_s, 4),
            "warm_cell_seconds": round(warm_s, 4),
            "no_store_cell_seconds": round(no_store_s, 4),
            "warm_speedup_vs_no_store": round(no_store_s / warm_s, 2),
            "warm_scene_phase_fraction": round(scene_s / total_s, 4),
            "byte_identical": True,
        }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # -- compiled-plan store: absent/cold/warm on the warm-scene cell ---
    # The fast oo-vr cell with a warm scene store, so the scene wall is
    # already gone and the plan store's effect on the bind+price phases
    # is isolated.  Results are asserted identical across all three
    # store states before anything is timed; the gate is on *phase
    # seconds* (bind + price with the store warm must be at least 2x
    # cheaper than with no store), which is a same-host A/B the whole-
    # cell walls merely contextualise.
    from repro.plan.store import PlanStore, plan_store_scope
    from repro.reuse import get_cache

    plan_root = tempfile.mkdtemp(prefix="oovr-plan-bench-")
    try:
        scene_store = SceneStore(Path(plan_root) / "scenes")
        plan_store = PlanStore(Path(plan_root) / "plans")
        fast_spec = RunSpec(framework="oo-vr", workload="HL2-1280").with_preset(
            FAST
        )

        def plan_cell(active_plan):
            # Fresh frames each call: the per-process memo is anchored
            # on frame identity, so clearing the scene memo forces the
            # build path (and with it the store consult) to run.
            cached_scene.cache_clear()
            get_cache().clear()
            with scene_store_scope(scene_store):
                if active_plan is None:
                    return fast_spec.execute()
                with plan_store_scope(active_plan):
                    return fast_spec.execute()

        plan_cell(None)  # warm the scene store itself
        absent_result = plan_cell(None)
        start = time.perf_counter()
        cold_result = plan_cell(plan_store)
        plan_cold_s = time.perf_counter() - start
        warm_result = plan_cell(plan_store)
        assert cold_result.to_dict() == absent_result.to_dict()
        assert warm_result.to_dict() == absent_result.to_dict()
        plan_warm_s = _best_seconds(lambda: plan_cell(plan_store), repeats=2)
        plan_absent_s = _best_seconds(lambda: plan_cell(None), repeats=2)

        def bind_price_seconds(active_plan):
            profile = profiling.PhaseProfile()
            with profiling.capture(profile):
                plan_cell(active_plan)
            seconds = profile.seconds.get("bind", 0.0) + profile.seconds.get(
                "price", 0.0
            )
            return seconds, profile

        absent_phase_s, _ = bind_price_seconds(None)
        warm_phase_s, warm_profile = bind_price_seconds(plan_store)
        scene_build["plan_store"] = {
            "cell": "oo-vr HL2-1280 FAST preset, scene store warm",
            "cold_cell_seconds": round(plan_cold_s, 4),
            "warm_cell_seconds": round(plan_warm_s, 4),
            "no_store_cell_seconds": round(plan_absent_s, 4),
            "warm_speedup_vs_no_store": round(plan_absent_s / plan_warm_s, 2),
            "no_store_bind_price_seconds": round(absent_phase_s, 4),
            "warm_bind_price_seconds": round(warm_phase_s, 4),
            "warm_bind_price_speedup": round(absent_phase_s / warm_phase_s, 2),
            "warm_bind_price_fraction": round(
                warm_phase_s / warm_profile.total_seconds, 4
            ),
            "warm_plan_hits": int(
                warm_profile.counters.get("plan_store_hit", 0)
            ),
            "byte_identical": True,
        }
        # The gate: a warm plan store halves (at least) the combined
        # bind+price phase cost of the warm-scene cell.
        assert scene_build["plan_store"]["warm_bind_price_speedup"] >= 2.0
        assert scene_build["plan_store"]["warm_plan_hits"] > 0
    finally:
        shutil.rmtree(plan_root, ignore_errors=True)

    # -- shared-workload sweep: reuse cache on vs off -------------------
    # Four cells over one workload — the ablation-grid shape the reuse
    # layer exists for (cells differ only in framework/variant, so
    # scene batches and frame characterisation are shared).  Equality
    # is asserted before either side is timed, and both sides run on
    # this host, so the 1.5x floor is a machine-independent A/B.
    # (Frameworks whose cost is per-unit NUMA binding — baseline's
    # 7.7k single-object units above all — reuse little by design;
    # this grid measures the characterisation-bound family.)
    def shared_grid():
        return (
            Sweep()
            .full()
            .frameworks("oo-app", "oo-vr", "oo-vr:no-dhc", "afr")
            .workloads("HL2-1280")
        )

    csv_with_reuse = shared_grid().run().to_csv()
    csv_without = shared_grid().run(reuse=False).to_csv()
    assert csv_with_reuse == csv_without
    reuse_s = _best_seconds(lambda: shared_grid().run(), repeats=2)
    no_reuse_s = _best_seconds(
        lambda: shared_grid().run(reuse=False), repeats=2
    )
    shared_sweep = {
        "grid": "oo-app/oo-vr/oo-vr:no-dhc/afr x HL2-1280, FULL preset, serial",
        "cells": 4,
        "byte_identical": True,
        "reuse_seconds": round(reuse_s, 4),
        "no_reuse_seconds": round(no_reuse_s, 4),
        "reuse_speedup": round(no_reuse_s / reuse_s, 2),
    }
    assert shared_sweep["reuse_speedup"] >= 1.5

    document = {
        "bench": "cell_throughput",
        "cell": "oo-vr HL2-1280 FULL preset RunSpec.execute()",
        "baseline": GOLDEN_BASELINE.name,
        "engines": engines,
        "hot_path_kernels": kernels,
        "scene_build": scene_build,
        "shared_workload_sweep": shared_sweep,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_cell_throughput.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(json.dumps(document, indent=2))


def test_service_throughput(tmp_path):
    """Cells/sec of one fast grid through each executor backend.

    Serial is the floor, the process pool adds spawn cost, and the
    remote loopback (daemon + two worker threads on this host) adds
    the full submit/lease/upload/poll round trip — the number that
    says what the sweep service costs *beyond* the simulator.  Every
    backend must still export byte-identical records.  Emits
    ``benchmarks/output/BENCH_service_throughput.json``.
    """

    def grid() -> Sweep:
        return (
            Sweep()
            .preset(FAST)
            .frameworks("baseline", "oo-vr")
            .workloads("DM3-640", "HL2-640", "WE")
        )

    cells = len(grid().specs())

    def timed(executor, **kwargs):
        start = time.perf_counter()
        results = grid().run(executor=executor, **kwargs)
        return results.to_csv(), time.perf_counter() - start

    backends = {}
    reference, seconds = timed("serial")
    backends["serial"] = {"seconds": seconds}

    csv, seconds = timed("process", jobs=2)
    assert csv == reference
    backends["process"] = {"seconds": seconds, "jobs": 2}

    server = serve(cache=ResultCache(tmp_path / "server-cache"))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    stop = threading.Event()
    workers = [
        SweepWorker(server.url, name=f"w{index}", poll_interval=0.02)
        for index in range(2)
    ]
    threads = [
        threading.Thread(
            target=worker.run_forever,
            kwargs={"should_stop": stop.is_set},
            daemon=True,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    try:
        csv, seconds = timed(
            RemoteExecutor(server.url, poll_interval=0.02)
        )
        assert csv == reference
        backends["remote-loopback"] = {"seconds": seconds, "workers": 2}
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        server.shutdown()
        server.server_close()

    for row in backends.values():
        row["cells_per_sec"] = round(cells / row["seconds"], 3)
        row["seconds"] = round(row["seconds"], 3)
    document = {
        "bench": "service_throughput",
        "grid_cells": cells,
        "preset": {
            "draw_scale": FAST.draw_scale,
            "num_frames": FAST.num_frames,
        },
        "byte_identical": True,
        "backends": backends,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_service_throughput.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(json.dumps(document, indent=2))
