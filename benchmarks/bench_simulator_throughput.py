"""Micro-benchmarks of the simulator itself (not a paper figure).

Tracks the cost of the hot paths — draw characterisation, NUMA-resolved
unit execution, and a full OO-VR frame — so performance regressions in
the simulator are visible in CI, plus the dispatch overhead of each
sweep-executor backend (``BENCH_service_throughput.json``).
"""

import json
import threading
import time

from benchmarks.conftest import BENCH, OUTPUT_DIR
from repro.frameworks.base import build_framework
from repro.experiments.runner import scene_for
from repro.gpu.system import MultiGPUSystem
from repro.pipeline.smp import SMPMode
from repro.service import RemoteExecutor, SweepWorker, serve
from repro.session import FAST, ResultCache, Sweep


def test_characterize_draw(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    draw = scene.frames[0].objects[0].multiview_draw()
    benchmark(fw.characterizer.characterize, draw, SMPMode.SIMULTANEOUS)


def test_execute_unit(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    unit = fw.characterizer.characterize(
        scene.frames[0].objects[0].multiview_draw()
    )
    system = MultiGPUSystem(fw.config)
    system.begin_frame()

    def run():
        system.execute_unit(unit, 0, fb_targets={0: 1.0})

    benchmark(run)


def test_oovr_full_frame(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("oo-vr")

    def run():
        return fw.render_frame(scene.frames[0], "HL2-1280")

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_service_throughput(tmp_path):
    """Cells/sec of one fast grid through each executor backend.

    Serial is the floor, the process pool adds spawn cost, and the
    remote loopback (daemon + two worker threads on this host) adds
    the full submit/lease/upload/poll round trip — the number that
    says what the sweep service costs *beyond* the simulator.  Every
    backend must still export byte-identical records.  Emits
    ``benchmarks/output/BENCH_service_throughput.json``.
    """

    def grid() -> Sweep:
        return (
            Sweep()
            .preset(FAST)
            .frameworks("baseline", "oo-vr")
            .workloads("DM3-640", "HL2-640", "WE")
        )

    cells = len(grid().specs())

    def timed(executor, **kwargs):
        start = time.perf_counter()
        results = grid().run(executor=executor, **kwargs)
        return results.to_csv(), time.perf_counter() - start

    backends = {}
    reference, seconds = timed("serial")
    backends["serial"] = {"seconds": seconds}

    csv, seconds = timed("process", jobs=2)
    assert csv == reference
    backends["process"] = {"seconds": seconds, "jobs": 2}

    server = serve(cache=ResultCache(tmp_path / "server-cache"))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    stop = threading.Event()
    workers = [
        SweepWorker(server.url, name=f"w{index}", poll_interval=0.02)
        for index in range(2)
    ]
    threads = [
        threading.Thread(
            target=worker.run_forever,
            kwargs={"should_stop": stop.is_set},
            daemon=True,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    try:
        csv, seconds = timed(
            RemoteExecutor(server.url, poll_interval=0.02)
        )
        assert csv == reference
        backends["remote-loopback"] = {"seconds": seconds, "workers": 2}
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        server.shutdown()
        server.server_close()

    for row in backends.values():
        row["cells_per_sec"] = round(cells / row["seconds"], 3)
        row["seconds"] = round(row["seconds"], 3)
    document = {
        "bench": "service_throughput",
        "grid_cells": cells,
        "preset": {
            "draw_scale": FAST.draw_scale,
            "num_frames": FAST.num_frames,
        },
        "byte_identical": True,
        "backends": backends,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_service_throughput.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(json.dumps(document, indent=2))
