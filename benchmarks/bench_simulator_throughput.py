"""Micro-benchmarks of the simulator itself (not a paper figure).

Tracks the cost of the hot paths — draw characterisation, NUMA-resolved
unit execution, and a full OO-VR frame — so performance regressions in
the simulator are visible in CI, plus the dispatch overhead of each
sweep-executor backend (``BENCH_service_throughput.json``).
"""

import json
import threading
import time
from pathlib import Path

from benchmarks.conftest import BENCH, OUTPUT_DIR
from repro.frameworks.base import build_framework
from repro.experiments.runner import scene_for
from repro.gpu.system import MultiGPUSystem
from repro.pipeline.smp import SMPMode
from repro.service import RemoteExecutor, SweepWorker, serve
from repro.session import FAST, ResultCache, RunSpec, Sweep

GOLDEN_BASELINE = (
    Path(__file__).parent / "golden" / "cell_throughput_baseline.json"
)


def test_characterize_draw(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    draw = scene.frames[0].objects[0].multiview_draw()
    benchmark(fw.characterizer.characterize, draw, SMPMode.SIMULTANEOUS)


def test_execute_unit(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    unit = fw.characterizer.characterize(
        scene.frames[0].objects[0].multiview_draw()
    )
    system = MultiGPUSystem(fw.config)
    system.begin_frame()

    def run():
        system.execute_unit(unit, 0, fb_targets={0: 1.0})

    benchmark(run)


def test_oovr_full_frame(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("oo-vr")

    def run():
        return fw.render_frame(scene.frames[0], "HL2-1280")

    benchmark.pedantic(run, rounds=3, iterations=1)


def _best_seconds(fn, repeats=3):
    """Best-of-N wall time of ``fn()`` after one warm-up call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_cell_throughput():
    """Event-vs-analytic cells/sec, plus the batched-kernel trajectory.

    Two matrices, both emitted as
    ``benchmarks/output/BENCH_cell_throughput.json``:

    - ``engines`` — whole-cell rates (``RunSpec.execute()`` of the
      oo-vr HL2-1280 FULL cell) under the analytic and event engines,
      each with its speedup over the pre-SoA seed pinned in
      ``benchmarks/golden/cell_throughput_baseline.json``;
    - ``hot_path_kernels`` — the per-cell hot-path kernels measured
      batched *and* through the retained scalar reference on the same
      machine, so the speedup column is an honest same-host A/B rather
      than a cross-machine ratio.  The raster front end (a
      fully-scissored 5120-triangle draw, where batching rejects every
      face without entering Python) is the headline: it must clear 10x
      over the per-triangle reference walk.

    The batched paths are asserted equal to their references before
    being timed — a fast wrong kernel must fail here, not ship a
    flattering number.
    """
    baseline = json.loads(GOLDEN_BASELINE.read_text())["kernels"]

    # -- whole cells: analytic vs event engine --------------------------
    engines = {}
    for engine in ("analytic", "event"):
        spec = RunSpec(
            framework="oo-vr", workload="HL2-1280", engine=engine
        )
        spec.execute()  # warm the memoised scene before timing
        seconds = _best_seconds(spec.execute, repeats=2)
        rate = 1.0 / seconds
        engines[engine] = {
            "seconds": round(seconds, 4),
            "cells_per_sec": round(rate, 3),
            "speedup_vs_baseline": round(
                rate / baseline[f"cell_per_sec_{engine}"], 3
            ),
        }

    kernels = {}

    # -- middleware grouping (Fig. 12 loop, memoised share vectors) -----
    from repro.core.middleware import OOMiddleware

    frame = scene_for("HL2-1280", BENCH).frames[0]
    middleware = OOMiddleware()
    seconds = _best_seconds(
        lambda: middleware.build_batches(frame.objects)
    )
    rate = len(frame.objects) / seconds
    kernels["middleware_grouping"] = {
        "objects_per_sec": round(rate, 1),
        "speedup_vs_baseline": round(
            rate / baseline["middleware_grouping_objects_per_sec"], 2
        ),
    }

    # -- frame characterisation: SoA pass vs per-draw scalar loop -------
    fw = build_framework("baseline")
    draws = frame.multiview_draws()
    batched_units = fw.characterizer.characterize_frame(frame)
    scalar_units = tuple(
        fw.characterizer.characterize(draw) for draw in draws
    )
    assert batched_units == scalar_units
    batched_s = _best_seconds(
        lambda: fw.characterizer.characterize_frame(frame)
    )
    scalar_s = _best_seconds(
        lambda: [fw.characterizer.characterize(d) for d in draws]
    )
    kernels["characterize"] = {
        "batched_draws_per_sec": round(len(draws) / batched_s, 1),
        "reference_draws_per_sec": round(len(draws) / scalar_s, 1),
        "speedup_vs_reference": round(scalar_s / batched_s, 2),
        "speedup_vs_baseline": round(
            (len(draws) / batched_s)
            / baseline["characterize_draws_per_sec"],
            2,
        ),
    }

    # -- raster front end: batched cull vs per-triangle walk ------------
    import numpy as np

    from repro.render.framebuffer import FrameBuffer
    from repro.render.math3d import look_at, perspective
    from repro.render.mesh3d import make_icosphere
    from repro.render.raster import Rasterizer

    mesh = make_icosphere(radius=1.0, subdivisions=4)
    view = look_at(
        np.asarray([3.0, 2.5, 4.0]), np.zeros(3), np.asarray([0.0, 1.0, 0.0])
    )
    mvp = perspective(60.0, 1.0, 0.1, 50.0) @ view
    # Scissored to a corner the sphere never covers: the batched front
    # end rejects all 5120 faces in a handful of array ops, while the
    # reference walks them one by one — the per-cell hot path at its
    # purest.
    fb = FrameBuffer(640, 640)
    raster = Rasterizer(fb, scissor=(0, 0, 2, 2))
    assert raster.draw_mesh(mesh, mvp) == raster.draw_mesh_reference(
        mesh, mvp
    )
    batched_s = _best_seconds(lambda: raster.draw_mesh(mesh, mvp))
    scalar_s = _best_seconds(
        lambda: raster.draw_mesh_reference(mesh, mvp)
    )
    kernels["raster_front_end"] = {
        "batched_tris_per_sec": round(mesh.num_triangles / batched_s, 1),
        "reference_tris_per_sec": round(mesh.num_triangles / scalar_s, 1),
        "speedup_vs_reference": round(scalar_s / batched_s, 2),
        "speedup_vs_baseline": round(
            (mesh.num_triangles / batched_s)
            / baseline["raster_front_end_tris_per_sec"],
            2,
        ),
    }

    # The tentpole target: >= 10x on the per-cell hot path, measured as
    # a same-machine batched-vs-reference A/B.
    assert kernels["raster_front_end"]["speedup_vs_reference"] >= 10.0

    document = {
        "bench": "cell_throughput",
        "cell": "oo-vr HL2-1280 FULL preset RunSpec.execute()",
        "baseline": GOLDEN_BASELINE.name,
        "engines": engines,
        "hot_path_kernels": kernels,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_cell_throughput.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(json.dumps(document, indent=2))


def test_service_throughput(tmp_path):
    """Cells/sec of one fast grid through each executor backend.

    Serial is the floor, the process pool adds spawn cost, and the
    remote loopback (daemon + two worker threads on this host) adds
    the full submit/lease/upload/poll round trip — the number that
    says what the sweep service costs *beyond* the simulator.  Every
    backend must still export byte-identical records.  Emits
    ``benchmarks/output/BENCH_service_throughput.json``.
    """

    def grid() -> Sweep:
        return (
            Sweep()
            .preset(FAST)
            .frameworks("baseline", "oo-vr")
            .workloads("DM3-640", "HL2-640", "WE")
        )

    cells = len(grid().specs())

    def timed(executor, **kwargs):
        start = time.perf_counter()
        results = grid().run(executor=executor, **kwargs)
        return results.to_csv(), time.perf_counter() - start

    backends = {}
    reference, seconds = timed("serial")
    backends["serial"] = {"seconds": seconds}

    csv, seconds = timed("process", jobs=2)
    assert csv == reference
    backends["process"] = {"seconds": seconds, "jobs": 2}

    server = serve(cache=ResultCache(tmp_path / "server-cache"))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    stop = threading.Event()
    workers = [
        SweepWorker(server.url, name=f"w{index}", poll_interval=0.02)
        for index in range(2)
    ]
    threads = [
        threading.Thread(
            target=worker.run_forever,
            kwargs={"should_stop": stop.is_set},
            daemon=True,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    try:
        csv, seconds = timed(
            RemoteExecutor(server.url, poll_interval=0.02)
        )
        assert csv == reference
        backends["remote-loopback"] = {"seconds": seconds, "workers": 2}
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        server.shutdown()
        server.server_close()

    for row in backends.values():
        row["cells_per_sec"] = round(cells / row["seconds"], 3)
        row["seconds"] = round(row["seconds"], 3)
    document = {
        "bench": "service_throughput",
        "grid_cells": cells,
        "preset": {
            "draw_scale": FAST.draw_scale,
            "num_frames": FAST.num_frames,
        },
        "byte_identical": True,
        "backends": backends,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_service_throughput.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(json.dumps(document, indent=2))
