"""Micro-benchmarks of the simulator itself (not a paper figure).

Tracks the cost of the hot paths — draw characterisation, NUMA-resolved
unit execution, and a full OO-VR frame — so performance regressions in
the simulator are visible in CI.
"""

from benchmarks.conftest import BENCH
from repro.frameworks.base import build_framework
from repro.experiments.runner import scene_for
from repro.gpu.system import MultiGPUSystem
from repro.pipeline.smp import SMPMode


def test_characterize_draw(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    draw = scene.frames[0].objects[0].multiview_draw()
    benchmark(fw.characterizer.characterize, draw, SMPMode.SIMULTANEOUS)


def test_execute_unit(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("baseline")
    unit = fw.characterizer.characterize(
        scene.frames[0].objects[0].multiview_draw()
    )
    system = MultiGPUSystem(fw.config)
    system.begin_frame()

    def run():
        system.execute_unit(unit, 0, fb_targets={0: 1.0})

    benchmark(run)


def test_oovr_full_frame(benchmark):
    scene = scene_for("HL2-1280", BENCH)
    fw = build_framework("oo-vr")

    def run():
        return fw.render_frame(scene.frames[0], "HL2-1280")

    benchmark.pedantic(run, rounds=3, iterations=1)
