"""Ablation: middleware TSL-threshold and triangle-cap sensitivity.

Checks that the paper's fixed choices (TSL > 0.5, 4096-triangle cap)
sit on the plateau of the parameter space rather than at a cliff.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.experiments.extensions import batching_sensitivity


def test_ablation_batching(bench_once):
    result = bench_once(
        batching_sensitivity,
        BENCH,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    record_output("ablation_batching", result.to_text())
    series = result.series["speedup"]
    paper_point = series["tsl>0.5"]
    # The paper's operating point is within 25% of the best setting.
    assert paper_point >= 0.75 * max(series.values())
