"""Figure 18: speedup over a single GPM for 1/2/4/8 GPM systems.

Paper: baseline 2.08x and object-level 3.47x at 8 GPMs; OO-VR 3.64x at
4 GPMs and 6.27x at 8 GPMs.
"""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig18(bench_once):
    result = bench_once(figures.fig18_scalability, BENCH)
    record_output("fig18", result.to_text())
    assert result.series["OOVR"]["8 GPM"] > result.series["Baseline"]["8 GPM"]
    assert result.series["OOVR"]["4 GPM"] > 2.0
