"""Figure 8: SFR performance (tile-V 1.28x, tile-H 1.03x, object 1.60x)."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig08(bench_once):
    result = bench_once(figures.fig08_sfr_performance, BENCH)
    record_output("fig08", result.to_text())
    assert (
        result.average("Object-Level")
        > result.average("Tile-Level (H)")
    )
