"""Extension: foveated rendering stacked on top of OO-VR.

Foveation cuts fragment-shading work by eccentricity; OO-VR cuts
inter-GPM traffic by locality.  The two are orthogonal, so their
speedups should (approximately) compose — this bench measures the
stack on the pixel-heavy workloads where foveation has the most to
save.

The study is one declarative Sweep over three design points —
``baseline``, ``oo-vr``, and the ``oo-vr:fov`` framework variant
(:func:`repro.extensions.foveated.foveation_study`) — memoised through
the shared bench cache.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.extensions.foveated import FoveationConfig, foveation_study
from repro.stats.metrics import geomean

WORKLOADS = ("DM3-1600", "HL2-1600", "NFS")


def run_foveated():
    table = foveation_study(
        WORKLOADS,
        BENCH,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    # The "oo-vr:fov" variant renders with the default three-ring
    # profile; report exactly those parameters.
    profile = FoveationConfig()
    rows = []
    stacked_gains = []
    for workload, speedups in table.items():
        s_oovr = speedups["oo-vr"]
        s_stack = speedups["oo-vr+fov"]
        stacked_gains.append(s_stack / s_oovr)
        rows.append(
            f"{workload:<10}{s_oovr:>12.2f}{s_stack:>14.2f}"
            f"{s_stack / s_oovr:>14.2f}"
        )
    gain = geomean(stacked_gains)
    text = "\n".join(
        [
            "Extension E5: foveated rendering stacked on OO-VR "
            "(speedup over baseline)",
            f"profile: fovea r={profile.fovea_radius} rate={profile.fovea_rate}, "
            f"mid r={profile.mid_radius} rate={profile.mid_rate}, "
            f"periphery rate={profile.periphery_rate}",
            f"{'workload':<10}{'oo-vr':>12}{'oo-vr+fov':>14}{'fov gain':>14}",
            *rows,
            f"geomean foveation gain on top of OO-VR: {gain:.2f}x",
        ]
    )
    return text, gain


def test_ext_foveated(bench_once):
    text, gain = bench_once(run_foveated)
    record_output("ext_foveated", text)
    assert gain > 1.0
