"""Extension: foveated rendering stacked on top of OO-VR.

Foveation cuts fragment-shading work by eccentricity; OO-VR cuts
inter-GPM traffic by locality.  The two are orthogonal, so their
speedups should (approximately) compose — this bench measures the
stack on the pixel-heavy workloads where foveation has the most to
save.
"""

from benchmarks.conftest import BENCH, record_output
from repro.extensions.foveated import FoveationConfig, foveate_scene
from repro.experiments.runner import scene_for
from repro.frameworks.base import build_framework
from repro.stats.metrics import geomean

WORKLOADS = ("DM3-1600", "HL2-1600", "NFS")
PROFILE = FoveationConfig()


def run_foveated():
    rows = []
    stacked_gains = []
    for workload in WORKLOADS:
        scene = scene_for(workload, BENCH)
        foveated = foveate_scene(scene, PROFILE)
        base = build_framework("baseline").render_scene(scene)
        oovr = build_framework("oo-vr").render_scene(scene)
        oovr_fov = build_framework("oo-vr").render_scene(foveated)
        s_oovr = base.single_frame_cycles / oovr.single_frame_cycles
        s_stack = base.single_frame_cycles / oovr_fov.single_frame_cycles
        stacked_gains.append(s_stack / s_oovr)
        rows.append(
            f"{workload:<10}{s_oovr:>12.2f}{s_stack:>14.2f}"
            f"{s_stack / s_oovr:>14.2f}"
        )
    gain = geomean(stacked_gains)
    text = "\n".join(
        [
            "Extension E5: foveated rendering stacked on OO-VR "
            "(speedup over baseline)",
            f"profile: fovea r={PROFILE.fovea_radius} rate={PROFILE.fovea_rate}, "
            f"mid r={PROFILE.mid_radius} rate={PROFILE.mid_rate}, "
            f"periphery rate={PROFILE.periphery_rate}",
            f"{'workload':<10}{'oo-vr':>12}{'oo-vr+fov':>14}{'fov gain':>14}",
            *rows,
            f"geomean foveation gain on top of OO-VR: {gain:.2f}x",
        ]
    )
    return text, gain


def test_ext_foveated(bench_once):
    text, gain = bench_once(run_foveated)
    record_output("ext_foveated", text)
    assert gain > 1.0
