"""Ablation: per-component contribution of OO-VR's mechanisms.

Not a paper figure — the paper reports OO-VR only in aggregate.  This
bench disables one mechanism at a time (prediction, pre-allocation,
DHC, stealing) and re-measures Fig. 15's speedup, quantifying each
component's share of the gain.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.experiments.extensions import oovr_ablation


def test_ablation_oovr(bench_once):
    result = bench_once(
        oovr_ablation,
        BENCH,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    record_output("ablation_oovr", result.to_text())
    full = result.average("full")
    software = result.average("software-only")
    assert full > software, "hardware mechanisms must contribute"
    # DHC is a major contributor (composition serialises otherwise).
    assert result.average("no-dhc") < full
