"""Fig. 5 + Section 3 SMP validation — executed-pipeline edition.

The paper's Fig. 5 shows the actual left/right images its ATTILA SMP
engine produces, and Section 3 validates that engine by comparing
triangle and fragment counts (and reports SMP ≈ 27% faster than
rendering the two views sequentially).  This bench renders a real scene
with the software rasterizer, checks SMP is pixel-identical to
sequential stereo while halving vertex transforms, and reports the
simulated-cycle speedup of SMP over sequential rendering using the same
cost model the simulator prices draws with.
"""

import numpy as np

from repro.config import baseline_system
from repro.pipeline.characterize import DrawCharacterizer
from repro.pipeline.smp import SMPMode
from repro.pipeline.timing import price_work_unit
from repro.render import (
    Camera,
    StereoCamera,
    StereoRenderer,
    StereoRenderMode,
    validate_scene,
)
from repro.scene.scene import Frame

from benchmarks.conftest import record_output
from benchmarks.bench_scenes import build_temple_scene

EYE_W, EYE_H = 256, 256


def _smp_speedup_from_models(render_objects) -> float:
    """Price the measured frame both ways through the cost model."""
    config = baseline_system()
    characterizer = DrawCharacterizer(config)
    sequential = 0.0
    smp = 0.0
    for obj in render_objects:
        for draw in obj.stereo_draws():
            unit = characterizer.characterize(draw, mode=SMPMode.SEQUENTIAL)
            sequential += price_work_unit(unit, config.gpm, config.cost).compute_cycles
        unit = characterizer.characterize(
            obj.multiview_draw(), mode=SMPMode.SIMULTANEOUS
        )
        smp += price_work_unit(unit, config.gpm, config.cost).compute_cycles
    return sequential / smp if smp else 1.0


def run_fig05() -> str:
    camera = StereoCamera(
        Camera(position=(0.0, 1.6, 4.2), target=(0.0, 1.0, 0.0), aspect=1.0),
        ipd=0.12,
    )
    objects = build_temple_scene()
    renderer = StereoRenderer(camera, EYE_W, EYE_H)

    fb_seq, seq = renderer.render(objects, StereoRenderMode.SEQUENTIAL)
    fb_smp, smp = renderer.render(objects, StereoRenderMode.SMP)
    identical = np.array_equal(fb_seq.color, fb_smp.color)

    report = validate_scene(objects, camera, EYE_W, EYE_H)
    speedup = _smp_speedup_from_models(report.render_objects)

    lines = [
        "Fig. 5 / Section 3 — SMP rendering validation (executed pipeline)",
        f"scene: {len(objects)} objects at {EYE_W}x{EYE_H} per eye",
        "",
        f"sequential: {seq.summary()}",
        f"smp:        {smp.summary()}",
        "",
        f"images pixel-identical: {identical}",
        f"vertex transforms: {seq.total.vertices_transformed} -> "
        f"{smp.total.vertices_transformed} "
        f"({100 * (1 - smp.total.vertices_transformed / seq.total.vertices_transformed):.0f}% saved)",
        f"fragments unchanged: {seq.total.fragments_shaded} == {smp.total.fragments_shaded}",
        "",
        f"cost-model SMP speedup over sequential stereo: {speedup:.2f}x",
        "paper reports: 27% speedup (1.27x) for its ATTILA SMP engine",
        "",
        "measured-vs-modelled workload statistics:",
        report.table(),
    ]
    return "\n".join(lines)


def test_fig05(bench_once):
    text = bench_once(run_fig05)
    record_output("fig05", text)
    assert "pixel-identical: True" in text
