"""Figure 10: object-level SFR best-to-worst GPM performance ratio."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig10(bench_once):
    result = bench_once(figures.fig10_load_balance, BENCH)
    record_output("fig10", result.to_text())
    assert result.average("best-to-worst") > 1.1
