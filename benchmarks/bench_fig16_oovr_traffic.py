"""Figure 16: inter-GPM traffic (object 0.60x, OO-VR 0.24x of baseline)."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig16(bench_once):
    result = bench_once(figures.fig16_oovr_traffic, BENCH)
    record_output("fig16", result.to_text())
    assert result.average("OOVR") < result.average("Object-Level") < 1.0
