"""Shared 3D scenes for the executed-pipeline benches.

Not a bench itself: pytest collects only ``bench_*`` files listed in the
``python_files`` default (``test_*``), so this module is a plain helper
imported by the Fig. 5 bench and the validation bench.
"""

from repro.render import (
    SceneObject3D,
    make_box,
    make_checker_ground,
    make_cylinder,
    make_icosphere,
    rotate_y,
    translate,
)
from repro.render.raster import checker_shader


def build_temple_scene():
    """The example temple: pillars sharing 'stone' (Fig. 12's pairing)."""
    stone = checker_shader((205, 185, 150), (130, 110, 80), tiles=5)
    return [
        SceneObject3D(
            "ground",
            make_checker_ground(12.0, 8),
            translate(0, 0, 0),
            checker_shader((95, 115, 95), (45, 65, 45), tiles=1),
            "grass",
        ),
        SceneObject3D(
            "pillar1", make_cylinder(0.32, 2.4, 20), translate(-1.4, 0, -0.4),
            stone, "stone",
        ),
        SceneObject3D(
            "pillar2", make_cylinder(0.32, 2.4, 20), translate(1.4, 0, -0.4),
            stone, "stone",
        ),
        SceneObject3D(
            "orb",
            make_icosphere(0.45, 2),
            translate(0.0, 1.35, -0.8),
            checker_shader((225, 70, 70), (150, 25, 25), tiles=7),
            "orb",
        ),
        SceneObject3D(
            "crate",
            make_box(0.9, 0.9, 0.9),
            translate(0.3, 0.45, 1.1) @ rotate_y(0.6),
            checker_shader((165, 120, 70), (100, 65, 35), tiles=2),
            "wood",
        ),
    ]
