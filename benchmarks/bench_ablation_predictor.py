"""Ablation A3: how good is the Eq. 3 rendering-time predictor?

The paper never evaluates its predictor in isolation — it reports only
end-to-end OO-VR numbers.  This bench opens the box:

- **prediction error**: mean absolute percentage error of the Eq. 3
  ``t = c0 * #triangles`` prediction against the simulator's actual
  batch times, per workload (calibration batches excluded);
- **dispatch quality**: load-balance ratio achieved by Eq. 3 dispatch
  vs an oracle that reads each GPM's true ready time (the paper's
  argument is the predictor *approximates* that signal cheaply) vs
  blind round-robin (object-level SFR's policy).

The honest measured outcome (consistent with ablation A1, where
``no-prediction`` slightly beats full OO-VR): Eq. 3's triangle-only
time model carries 40-90% error, and the *balance* it achieves is
round-robin-grade — well short of the ready-time oracle.  The
predictor's real contribution in OO-VR is the **pre-allocation lead
time** (knowing the destination early enough for the PA copy to
overlap), not better balance; the paper does not separate the two.
"""

from repro.core.ablation import AblatedOOVR, OOVRFeatures, _AblatedEngine
from repro.core.oovr import OOVRFramework
from repro.experiments.runner import scene_for
from repro.stats.metrics import geomean

from benchmarks.conftest import BENCH, record_output


class _RoundRobinEngine(_AblatedEngine):
    """Dispatch ablated to blind round-robin (no prediction, no oracle)."""

    def _select_gpm(self, batch_index: int):
        return batch_index % self.system.num_gpms, False


class _RoundRobinOOVR(AblatedOOVR):
    """OO-VR with round-robin dispatch (everything else enabled)."""

    def render_frame_on(self, system, frame, workload):
        from repro.gpu.composition import compose_distributed

        engine = _RoundRobinEngine(system, self.features)
        rendered_pixels = engine.dispatch(self._builder.build(frame))
        compose_distributed(system, rendered_pixels)
        return system.frame_result(self.name, workload)


def run_predictor_study():
    rows = []
    errors = []
    balance = {"eq3": [], "oracle": [], "round-robin": []}
    for workload in BENCH.workloads:
        scene = scene_for(workload, BENCH)

        full = OOVRFramework()
        result = full.render_scene(scene)
        records = [
            r
            for r in full.last_engine.records
            if not r.calibration and r.predicted_cycles
        ]
        mape = (
            geomean(
                [
                    max(
                        abs(r.predicted_cycles - r.actual_cycles)
                        / r.actual_cycles,
                        1e-6,
                    )
                    for r in records
                ]
            )
            if records
            else float("nan")
        )
        errors.append(mape)
        balance["eq3"].append(result.mean_load_balance_ratio)

        oracle = AblatedOOVR(features=OOVRFeatures(prediction=False))
        balance["oracle"].append(
            oracle.render_scene(scene).mean_load_balance_ratio
        )
        rr = _RoundRobinOOVR(features=OOVRFeatures(prediction=False))
        balance["round-robin"].append(
            rr.render_scene(scene).mean_load_balance_ratio
        )

        rows.append(
            f"{workload:<10}{100 * mape:>10.0f}%"
            f"{balance['eq3'][-1]:>10.3f}{balance['oracle'][-1]:>12.3f}"
            f"{balance['round-robin'][-1]:>13.3f}"
        )

    summary = {key: geomean(values) for key, values in balance.items()}
    text = "\n".join(
        [
            "Ablation A3: Eq. 3 predictor accuracy and dispatch quality",
            "(load balance = worst/best GPM busy ratio, 1.0 is perfect)",
            f"{'workload':<10}{'Eq3 MAPE':>11}{'Eq3 bal':>10}{'oracle bal':>12}"
            f"{'round-robin':>13}",
            *rows,
            f"{'geomean':<10}{100 * geomean(errors):>10.0f}%"
            f"{summary['eq3']:>10.3f}{summary['oracle']:>12.3f}"
            f"{summary['round-robin']:>13.3f}",
            "",
            "Eq. 3 is a coarse *time* model; its dispatch balances about as",
            "well as round-robin, and the oracle row bounds what a perfect",
            "ready-time signal would add.  The predictor's real value in",
            "OO-VR is the pre-allocation lead time, not better balance.",
        ]
    )
    return text, geomean(errors), summary


def test_ablation_predictor(bench_once):
    text, mape, balance = bench_once(run_predictor_study)
    record_output("ablation_predictor", text)
    # The ready-time oracle is the balance lower bound.
    assert balance["oracle"] <= balance["eq3"]
    assert balance["oracle"] <= balance["round-robin"]
    # Eq. 3 dispatch is round-robin-grade on balance (the honest
    # finding), never catastrophically worse.
    assert balance["eq3"] <= balance["round-robin"] * 1.15
