"""Table 2: the baseline multi-GPU configuration."""

from benchmarks.conftest import record_output
from repro.experiments import tables


def test_table2(bench_once):
    text = bench_once(tables.table2_configuration)
    record_output("table2", text)
    assert "64GB/s NVLink" in text
