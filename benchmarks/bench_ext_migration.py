"""Extension: reactive page migration vs proactive pre-allocation.

The NUMA-GPU works the paper builds on use reactive mechanisms
(first-touch, remote caches, migration); OO-VR's distribution engine is
proactive (PA units copy a batch's data before rendering).  This bench
runs the baseline with a hot-page migration engine attached and
compares latency *and* traffic against plain baseline and OO-VR: the
measured argument is that migration recovers some latency but pays for
it in copy traffic, while OO-VR improves both at once.
"""

from benchmarks.conftest import BENCH, record_output
from repro.experiments.runner import (
    run_framework_suite,
    single_frame_speedups,
    traffic_ratios,
)
from repro.stats.metrics import geomean

SCHEMES = ("baseline", "baseline-mig", "oo-vr")


def run_migration():
    suites = {name: run_framework_suite(name, BENCH) for name in SCHEMES}
    base = suites["baseline"]
    lines = [
        "Extension E6: reactive migration vs proactive pre-allocation",
        f"{'scheme':<14}{'speedup':>10}{'traffic vs baseline':>22}",
    ]
    summary = {}
    for scheme in SCHEMES:
        speedup = geomean(list(single_frame_speedups(suites[scheme], base).values()))
        traffic = geomean(list(traffic_ratios(suites[scheme], base).values()))
        summary[scheme] = (speedup, traffic)
        lines.append(f"{scheme:<14}{speedup:>10.2f}{traffic:>22.2f}")
    return "\n".join(lines), summary


def test_ext_migration(bench_once):
    text, summary = bench_once(run_migration)
    record_output("ext_migration", text)
    mig_speedup, mig_traffic = summary["baseline-mig"]
    oovr_speedup, oovr_traffic = summary["oo-vr"]
    # Migration helps latency a little but cannot cut traffic the way
    # proactive batching does.
    assert mig_speedup >= 0.99
    assert oovr_speedup > mig_speedup
    assert oovr_traffic < mig_traffic
