"""Extension: reactive page migration vs proactive pre-allocation.

The NUMA-GPU works the paper builds on use reactive mechanisms
(first-touch, remote caches, migration); OO-VR's distribution engine is
proactive (PA units copy a batch's data before rendering).  This bench
runs the baseline with a hot-page migration engine attached and
compares latency *and* traffic against plain baseline and OO-VR: the
measured argument is that migration recovers some latency but pays for
it in copy traffic, while OO-VR improves both at once.

The study is one declarative (scheme x workload) Sweep
(:func:`repro.extensions.migration.migration_study`) memoised through
the shared bench cache.
"""

from benchmarks.conftest import (
    BENCH,
    BENCH_CACHE,
    BENCH_EXECUTOR,
    BENCH_JOBS,
    record_output,
)
from repro.extensions.migration import migration_study

SCHEMES = ("baseline", "baseline-mig", "oo-vr")


def run_migration():
    summary = migration_study(
        SCHEMES,
        BENCH,
        cache=BENCH_CACHE,
        jobs=BENCH_JOBS,
        executor=BENCH_EXECUTOR,
    )
    lines = [
        "Extension E6: reactive migration vs proactive pre-allocation",
        f"{'scheme':<14}{'speedup':>10}{'traffic vs baseline':>22}",
    ]
    for scheme, (speedup, traffic) in summary.items():
        lines.append(f"{scheme:<14}{speedup:>10.2f}{traffic:>22.2f}")
    return "\n".join(lines), summary


def test_ext_migration(bench_once):
    text, summary = bench_once(run_migration)
    record_output("ext_migration", text)
    mig_speedup, mig_traffic = summary["baseline-mig"]
    oovr_speedup, oovr_traffic = summary["oo-vr"]
    # Migration helps latency a little but cannot cut traffic the way
    # proactive batching does.
    assert mig_speedup >= 0.99
    assert oovr_speedup > mig_speedup
    assert oovr_traffic < mig_traffic
