"""Table 1: PC gaming vs. stereo VR display requirements."""

from benchmarks.conftest import record_output
from repro.experiments import tables


def test_table1(bench_once):
    text = bench_once(tables.table1_requirements)
    record_output("table1", text)
    assert "Stereo HMD" in text
