"""Figure 7: AFR overall performance (1.67x) and frame latency (+59%)."""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig07(bench_once):
    result = bench_once(figures.fig07_afr, BENCH)
    record_output("fig07", result.to_text())
    assert result.average("overall perf") > 1.3
    assert result.average("frame latency") > 1.3
