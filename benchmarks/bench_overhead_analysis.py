"""Section 5.4: distribution-engine storage/area/power accounting."""

from benchmarks.conftest import record_output
from repro.core.overhead import OverheadModel


def test_overhead(bench_once):
    model = OverheadModel()
    text = bench_once(model.report)
    record_output("overhead", text)
    # The paper's anchor: ~0.59 mm^2 and ~0.3 W at ~1000 bits of state,
    # well below 0.5% of a GTX 1080 on both axes.
    assert model.area_fraction_of_gtx1080 < 0.005
    assert model.power_fraction_of_gtx1080_tdp < 0.005
