"""Figure 4: baseline performance vs. inter-GPM link bandwidth.

Paper: 22% / 42% / 65% average degradation at 128 / 64 / 32 GB/s
relative to 1 TB/s links.
"""

from benchmarks.conftest import BENCH, record_output
from repro.experiments import figures


def test_fig04(bench_once):
    result = bench_once(figures.fig04_bandwidth_sensitivity, BENCH)
    record_output("fig04", result.to_text())
    series = [result.average(c) for c in result.series]
    assert series == sorted(series, reverse=True)
    assert result.average("64GB/s") < 0.8
