#!/usr/bin/env python3
"""Render a real stereo VR frame with the software rasterizer (Fig. 5).

Builds a small temple scene (checker ground, stone pillars, an orb and a
crate), renders it through the three stereo paths — sequential stereo,
SMP, and viewport reprojection — and writes the images next to this
script under ``out/``:

- ``stereo_smp.ppm``      the packed left|right HMD frame (Fig. 5 right)
- ``left.ppm`` / ``right.ppm``  the individual eye images
- ``depth_left.pgm``      the left eye's depth buffer

It then prints the per-mode pipeline counters: SMP renders the identical
image while halving vertex-shading work, which is the property the
paper's SMP engine exploits (and validates on real GPUs in Section 3).

Run:  python examples/render_stereo_frame.py
"""

import pathlib

import numpy as np

from repro.render import (
    Camera,
    SceneObject3D,
    StereoCamera,
    StereoRenderer,
    StereoRenderMode,
    make_box,
    make_checker_ground,
    make_cylinder,
    make_icosphere,
    rotate_y,
    translate,
    validate_scene,
)
from repro.render.raster import checker_shader

OUT = pathlib.Path(__file__).parent / "out"
EYE_W, EYE_H = 320, 320


def build_scene():
    """The temple props; pillars share the 'stone' texture (Fig. 12)."""
    stone = checker_shader((205, 185, 150), (130, 110, 80), tiles=5)
    return [
        SceneObject3D(
            "ground",
            make_checker_ground(12.0, 8),
            translate(0, 0, 0),
            checker_shader((95, 115, 95), (45, 65, 45), tiles=1),
            "grass",
        ),
        SceneObject3D(
            "pillar1", make_cylinder(0.32, 2.4, 20), translate(-1.4, 0, -0.4),
            stone, "stone",
        ),
        SceneObject3D(
            "pillar2", make_cylinder(0.32, 2.4, 20), translate(1.4, 0, -0.4),
            stone, "stone",
        ),
        SceneObject3D(
            "orb",
            make_icosphere(0.45, 2),
            translate(0.0, 1.35, -0.8),
            checker_shader((225, 70, 70), (150, 25, 25), tiles=7),
            "orb",
        ),
        SceneObject3D(
            "crate",
            make_box(0.9, 0.9, 0.9),
            translate(0.3, 0.45, 1.1) @ rotate_y(0.6),
            checker_shader((165, 120, 70), (100, 65, 35), tiles=2),
            "wood",
        ),
    ]


def main():
    camera = StereoCamera(
        Camera(position=(0.0, 1.6, 4.2), target=(0.0, 1.0, 0.0), aspect=1.0),
        ipd=0.12,  # exaggerated for a visible stereo disparity
    )
    objects = build_scene()
    renderer = StereoRenderer(camera, EYE_W, EYE_H)

    print(f"rendering {len(objects)} objects at {EYE_W}x{EYE_H} per eye\n")
    stats_by_mode = {}
    for mode in StereoRenderMode:
        packed, stats = renderer.render(objects, mode)
        stats_by_mode[mode] = stats
        print(" ", stats.summary())
        packed.write_ppm(OUT / f"stereo_{mode.value}.ppm")
        packed.write_png(OUT / f"stereo_{mode.value}.png")

    left, right, _ = renderer.render_eye_buffers(objects, StereoRenderMode.SMP)
    left.write_ppm(OUT / "left.ppm")
    right.write_ppm(OUT / "right.ppm")
    left.write_depth_pgm(OUT / "depth_left.pgm")

    seq = stats_by_mode[StereoRenderMode.SEQUENTIAL].total
    smp = stats_by_mode[StereoRenderMode.SMP].total
    saved = 1.0 - smp.vertices_transformed / seq.vertices_transformed
    print(
        f"\nSMP saves {100 * saved:.0f}% of vertex transforms "
        f"({seq.vertices_transformed} -> {smp.vertices_transformed}) "
        "with a pixel-identical image."
    )

    report = validate_scene(objects, camera, EYE_W, EYE_H)
    print("\nmeasured vs modelled workload statistics:")
    print(report.table())
    print(f"\nimages written to {OUT}/")


if __name__ == "__main__":
    main()
