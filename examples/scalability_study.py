"""Scalability study: Fig. 18 as a library-use example.

Sweeps the GPM count (1, 2, 4, 8) for the baseline, object-level SFR
and OO-VR, normalised to a single GPM — the paper's future-larger-
multi-GPU argument.  OO-VR keeps scaling because its working sets stay
local; the baseline saturates on the links.
"""

from repro import baseline_system, build_framework, workload_scene
from repro.stats.metrics import geomean
from repro.stats.reporting import series_table

WORKLOADS = ("DM3-1280", "HL2-1280", "NFS")
SCHEMES = ("baseline", "object", "oo-vr")
GPM_COUNTS = (1, 2, 4, 8)


def mean_frame_cycles(name: str, num_gpms: int) -> float:
    config = baseline_system(num_gpms=num_gpms)
    cycles = []
    for workload in WORKLOADS:
        scene = workload_scene(workload, num_frames=2, draw_scale=0.5)
        result = build_framework(name, config).render_scene(scene)
        cycles.append(result.single_frame_cycles)
    return geomean(cycles)


def main() -> None:
    reference = mean_frame_cycles("baseline", 1)
    series = {scheme: {} for scheme in SCHEMES}
    for count in GPM_COUNTS:
        for scheme in SCHEMES:
            speedup = reference / mean_frame_cycles(scheme, count)
            series[scheme][f"{count} GPM"] = speedup
    print(
        series_table(
            series,
            [f"{c} GPM" for c in GPM_COUNTS],
            title="Speedup over a single GPM (cf. paper Fig. 18)",
            row_header="system size",
        )
    )
    print("\npaper reference @8 GPMs: baseline 2.08x, object 3.47x, OO-VR 6.27x")


if __name__ == "__main__":
    main()
