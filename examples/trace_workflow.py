#!/usr/bin/env python3
"""Trace capture / profile / replay — the paper's Section 6 workflow.

The paper profiles rendering traces of real games "to get the object
graphical properties (e.g., viewports, number of triangles and texture
data)" and feeds those properties to the OO middleware.  This example
walks the same loop with the library's trace layer:

1. capture a Table 3 workload into a portable ``.json.gz`` trace,
2. profile it (the pre-render pass: per-object properties, texture
   fan-out, TSL batching opportunities),
3. replay the trace through two schemes and compare,
4. show the trace survives a round trip bit-for-bit.

Run:  python examples/trace_workflow.py
"""

import pathlib
import tempfile

from repro.frameworks.base import build_framework
from repro.experiments.runner import ExperimentConfig, scene_for
from repro.trace import load_scene, profile_scene, save_scene, scene_to_document

WORKLOAD = "UT3"


def main():
    experiment = ExperimentConfig(draw_scale=0.4, num_frames=2)
    scene = scene_for(WORKLOAD, experiment)

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / f"{WORKLOAD.lower()}.json.gz"

        # 1. capture
        save_scene(scene, path)
        print(f"captured {WORKLOAD} -> {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB compressed)\n")

        # 2. profile (what the OO middleware sees before rendering)
        profile = profile_scene(scene)
        print(profile.table(max_rows=8))
        print()

        # 3. replay under two schemes
        replayed = load_scene(path)
        for scheme in ("object", "oo-vr"):
            result = build_framework(scheme).render_scene(replayed)
            frame = result.frames[-1]
            print(
                f"{scheme:<8} single frame {frame.cycles / 1e6:6.3f} Mcycles, "
                f"inter-GPM {frame.inter_gpm_bytes / (1 << 20):6.1f} MiB, "
                f"balance {frame.load_balance_ratio:.2f}"
            )

        # 4. round-trip fidelity
        assert scene_to_document(scene) == scene_to_document(replayed)
        print("\ntrace round trip verified: identical documents")


if __name__ == "__main__":
    main()
