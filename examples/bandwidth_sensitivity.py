"""Link-bandwidth sensitivity: Figs. 4 and 17 as a library-use example.

Shows why OO-VR matters for future systems: the baseline's frame time
tracks the inter-GPM link bandwidth almost linearly below ~128 GB/s,
while OO-VR barely moves because it converted the remote texture
streams into local ones.
"""

from repro import baseline_system, build_framework, workload_scene
from repro.stats.reporting import series_table

BANDWIDTHS_GB = (32, 64, 128, 256, 1000)
SCHEMES = ("baseline", "object", "oo-vr")


def main() -> None:
    scene = workload_scene("HL2-1280", num_frames=3, draw_scale=0.5)
    series = {scheme: {} for scheme in SCHEMES}
    reference = None
    for bandwidth in BANDWIDTHS_GB:
        config = baseline_system().with_link_bandwidth(float(bandwidth))
        for scheme in SCHEMES:
            result = build_framework(scheme, config).render_scene(scene)
            label = "1TB/s" if bandwidth >= 1000 else f"{bandwidth}GB/s"
            if reference is None:
                reference = result.single_frame_cycles  # baseline @32
            series[scheme][label] = reference / result.single_frame_cycles
    rows = ["32GB/s", "64GB/s", "128GB/s", "256GB/s", "1TB/s"]
    print(
        series_table(
            series,
            rows,
            title="Speedup vs. inter-GPM bandwidth, normalised to "
            "baseline @ 32GB/s (cf. paper Figs. 4 and 17)",
            row_header="link bw",
        )
    )


if __name__ == "__main__":
    main()
