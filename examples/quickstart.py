"""Quickstart: render one VR game frame under OO-VR and the baseline.

Uses the unified Session/Sweep API: one ``Sweep`` declares the
(framework x workload) grid over the paper's HL2 workload at 1280x1024,
and the returned ``ResultSet`` provides both the tidy records printed
below and the paper-style normalisation math (speedup, traffic saving).

Run:  python examples/quickstart.py
"""

from repro import Sweep


def main() -> None:
    results = (
        Sweep()
        .frameworks("baseline", "oo-vr")
        .workloads("HL2-1280")
        .frames(3)
        .run()
    )
    scene = results.specs[0].scene()
    print(f"workload: {scene.name}, {scene.num_draws} draws/frame, "
          f"{scene.width}x{scene.height} per eye\n")

    header = (f"{'scheme':<10} {'Mcycles':>9} {'ms@1GHz':>9} "
              f"{'MB/frame':>10} {'imbalance':>10}")
    print(header)
    print("-" * len(header))
    for spec, result in results:
        print(f"{spec.framework:<10} "
              f"{result.single_frame_cycles / 1e6:>9.3f} "
              f"{result.frames[-1].latency_ms():>9.3f} "
              f"{result.mean_inter_gpm_bytes_per_frame / 1e6:>10.2f} "
              f"{result.mean_load_balance_ratio:>10.2f}")

    speedup = results.normalize_to(
        "baseline", "single_frame_cycles", invert=True
    )["oo-vr"]["HL2-1280"]
    traffic = results.normalize_to(
        "baseline", "mean_inter_gpm_bytes_per_frame"
    )["oo-vr"]["HL2-1280"]
    print(f"\nOO-VR speedup        : {speedup:.2f}x")
    print(f"OO-VR traffic saving : {100 * (1 - traffic):.0f}%")


if __name__ == "__main__":
    main()
