"""Quickstart: render one VR game frame under OO-VR and the baseline.

Builds the paper's HL2 workload at 1280x1024, renders it under the
naive single-programming-model baseline and under OO-VR, and prints the
headline comparison: single-frame latency, inter-GPM traffic, and load
balance across the four GPU modules.

Run:  python examples/quickstart.py
"""

from repro import build_framework, workload_scene


def main() -> None:
    scene = workload_scene("HL2-1280", num_frames=3)
    print(f"workload: {scene.name}, {scene.num_draws} draws/frame, "
          f"{scene.width}x{scene.height} per eye\n")

    rows = []
    for name in ("baseline", "oo-vr"):
        framework = build_framework(name)
        result = framework.render_scene(scene)
        frame = result.frames[-1]
        rows.append(
            (
                name,
                result.single_frame_cycles / 1e6,
                frame.latency_ms(),
                result.mean_inter_gpm_bytes_per_frame / 1e6,
                result.mean_load_balance_ratio,
            )
        )

    header = f"{'scheme':<10} {'Mcycles':>9} {'ms@1GHz':>9} {'MB/frame':>10} {'imbalance':>10}"
    print(header)
    print("-" * len(header))
    for name, mcycles, ms, mb, balance in rows:
        print(f"{name:<10} {mcycles:>9.3f} {ms:>9.3f} {mb:>10.2f} {balance:>10.2f}")

    base, oovr = rows[0], rows[1]
    print(f"\nOO-VR speedup        : {base[1] / oovr[1]:.2f}x")
    print(f"OO-VR traffic saving : {100 * (1 - oovr[3] / base[3]):.0f}%")


if __name__ == "__main__":
    main()
