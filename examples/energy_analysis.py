#!/usr/bin/env python3
"""Energy analysis: traffic reduction as an energy win (Section 6.2).

The paper argues that cutting inter-GPM traffic saves energy directly —
10 pJ/bit on-board, 250 pJ/bit across nodes.  This example runs three
schemes on one workload and prices every frame with the full energy
model (links + DRAM + SM compute + OO-VR's 0.3 W distribution engine),
at both integration points.

Run:  python examples/energy_analysis.py [workload]
"""

import sys

from repro.energy import (
    EnergyConstants,
    EnergyModel,
    IntegrationPoint,
    scene_energy,
)
from repro.experiments.runner import ExperimentConfig, scene_for
from repro.frameworks.base import build_framework

SCHEMES = ("baseline", "object", "oo-vr")


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "NFS"
    experiment = ExperimentConfig(draw_scale=0.5, num_frames=3)
    scene = scene_for(workload, experiment)
    print(f"workload {workload}: {scene.num_draws} draws/frame\n")

    results = {
        scheme: build_framework(scheme).render_scene(scene)
        for scheme in SCHEMES
    }

    for point in IntegrationPoint:
        model = EnergyModel(EnergyConstants.for_integration(point))
        print(
            f"integration: {point.value} "
            f"({point.picojoules_per_bit:.0f} pJ/bit links)"
        )
        print(f"{'scheme':<10}{'link mJ':>9}{'dram mJ':>9}{'sm mJ':>9}"
              f"{'engine mJ':>11}{'total mJ':>10}")
        for scheme in SCHEMES:
            e = scene_energy(results[scheme], model).per_frame
            print(
                f"{scheme:<10}{e.link_joules * 1e3:>9.2f}"
                f"{e.dram_joules * 1e3:>9.2f}{e.compute_joules * 1e3:>9.2f}"
                f"{e.engine_joules * 1e3:>11.4f}{e.millijoules:>10.2f}"
            )
        base = scene_energy(results["baseline"], model).per_frame
        oovr = scene_energy(results["oo-vr"], model).per_frame
        saved = 1.0 - oovr.link_joules / base.link_joules
        print(f"OO-VR saves {100 * saved:.0f}% of link energy here\n")


if __name__ == "__main__":
    main()
