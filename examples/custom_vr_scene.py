"""Author a VR scene with the OO-VR programming model (Section 5.1).

Builds the paper's Fig. 12 scenario by hand: pillars sharing a "stone"
texture, a cloth flag, and a glass decal that depends on draw order.
Shows the whole OO-VR software stack working on user content:

1. the ``OOApplication`` builder merges each object's two eye views
   into one multi-view task (``viewportL``/``viewportR``);
2. ``OOMiddleware`` groups the objects into batches by texture sharing
   level (Eq. 1) — watch the pillars land in one batch;
3. the full OO-VR framework renders the frame and reports per-GPM
   balance and traffic.
"""

from repro import OOApplication, OOMiddleware, build_framework
from repro.scene.geometry import Viewport
from repro.scene.scene import Scene

MB = 1024 * 1024


def build_application() -> OOApplication:
    app = OOApplication(width=1280, height=1024)

    # A colonnade: eight pillars sharing one stone texture.
    for index in range(8):
        x = 120.0 * index + 40
        (
            app.object(f"pillar{index}")
            .mesh(num_vertices=800, num_triangles=1400)
            .texture("stone", 2 * MB)
            .appearance(depth_complexity=1.3, coverage=0.55)
            .auto_viewports(Viewport(x, 180, x + 70, 820))
            .add()
        )

    # A flag with its own cloth texture.
    (
        app.object("flag")
        .mesh(num_vertices=400, num_triangles=700)
        .texture("cloth", MB)
        .appearance(depth_complexity=1.1, coverage=0.7)
        .auto_viewports(Viewport(520, 60, 760, 220))
        .add()
    )

    # A window decal that must draw after the wall behind it.
    (
        app.object("wall")
        .mesh(num_vertices=600, num_triangles=900)
        .texture("plaster", MB)
        .auto_viewports(Viewport(900, 200, 1200, 800))
        .add()
    )
    (
        app.object("window")
        .mesh(num_vertices=120, num_triangles=180)
        .texture("glass", MB // 2)
        .after("wall")
        .auto_viewports(Viewport(960, 300, 1140, 600))
        .add()
    )
    return app


def main() -> None:
    app = build_application()
    frame = app.frame()

    print("authored objects:")
    for obj in frame.objects:
        eyes = "both eyes" if obj.is_stereo else "one eye"
        print(f"  {obj.name:<10} {obj.mesh.num_triangles:>5} tris, "
              f"{[t.name for t in obj.textures]}, {eyes}")

    batches = OOMiddleware().build_batches(frame.objects)
    print("\nmiddleware batches (TSL > 0.5 groups, 4096-triangle cap):")
    for batch in batches:
        names = [o.name for o in batch.objects]
        print(f"  batch {batch.batch_id}: {names} "
              f"({batch.total_triangles} tris)")

    scene = Scene(name="colonnade", frames=(frame,))
    for scheme in ("object", "oo-vr"):
        result = build_framework(scheme).render_scene(scene)
        f = result.frames[0]
        print(f"\n{scheme}: {f.cycles / 1e3:.0f} Kcycles, "
              f"{f.inter_gpm_bytes / 1e6:.2f} MB inter-GPM, "
              f"imbalance {f.load_balance_ratio:.2f}")


if __name__ == "__main__":
    main()
