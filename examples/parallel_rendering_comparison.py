"""Compare every parallel rendering framework on one VR workload.

Reproduces the flavour of the paper's Sections 4-6 in one table: for a
chosen workload, renders the scene under all eight schemes and reports
single-frame latency, steady-state frame rate, inter-GPM traffic and
GPM load balance.  Use a different workload with e.g.

    python examples/parallel_rendering_comparison.py NFS
"""

import sys

from repro import build_framework, framework_names, workload_scene
from repro.stats.reporting import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "DM3-1280"
    scene = workload_scene(workload, num_frames=4)
    print(f"workload {workload}: {scene.num_draws} draws/frame\n")

    rows = []
    baseline_cycles = None
    for name in framework_names():
        result = build_framework(name).render_scene(scene)
        if name == "baseline":
            baseline_cycles = result.single_frame_cycles
        rows.append(
            (
                name,
                result.single_frame_cycles / 1e6,
                result.throughput_fps,
                result.mean_inter_gpm_bytes_per_frame / 1e6,
                result.mean_load_balance_ratio,
            )
        )

    # Normalise latency to the baseline, the way the paper's bars do.
    assert baseline_cycles is not None
    table_rows = [
        (name, mcyc, baseline_cycles / (mcyc * 1e6), fps, mb, bal)
        for name, mcyc, fps, mb, bal in rows
    ]
    print(
        format_table(
            ("scheme", "Mcycles", "speedup", "FPS@1GHz", "MB/frame", "imbalance"),
            table_rows,
            title=f"Parallel rendering schemes on {workload}",
        )
    )


if __name__ == "__main__":
    main()
