"""Compare every parallel rendering framework on one VR workload.

Reproduces the flavour of the paper's Sections 4-6 in one table: a
single ``Sweep`` over all registered schemes, executed in parallel
worker processes, reporting single-frame latency, steady-state frame
rate, inter-GPM traffic and GPM load balance.  Usage::

    python examples/parallel_rendering_comparison.py [WORKLOAD] [JOBS]

e.g. ``python examples/parallel_rendering_comparison.py NFS 4``.
"""

import sys

from repro import Sweep, framework_names
from repro.stats.reporting import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "DM3-1280"
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    sweep = Sweep().frameworks(*framework_names()).workloads(workload).frames(4)
    # Peek at the workload before fanning out (workers rebuild their own
    # memoised copy; with jobs=1 the runs below reuse this one).
    scene = sweep.specs()[0].scene()
    print(f"workload {workload}: {scene.num_draws} draws/frame\n")
    results = sweep.run(jobs=jobs)

    # Normalise latency to the baseline, the way the paper's bars do.
    speedups = results.normalize_to(
        "baseline", "single_frame_cycles", invert=True
    )
    table_rows = [
        (
            record["framework"],
            record["single_frame_cycles"] / 1e6,
            speedups[record["framework"]][workload],
            record["throughput_fps"],
            record["mean_inter_gpm_bytes_per_frame"] / 1e6,
            record["mean_load_balance_ratio"],
        )
        for record in results.to_records()
    ]
    print(
        format_table(
            ("scheme", "Mcycles", "speedup", "FPS@1GHz", "MB/frame", "imbalance"),
            table_rows,
            title=f"Parallel rendering schemes on {workload}",
        )
    )


if __name__ == "__main__":
    main()
