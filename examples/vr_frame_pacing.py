#!/usr/bin/env python3
"""Frame pacing study: why VR needs low *latency*, not just throughput.

The paper rejects AFR (frame-level parallelism) despite its excellent
throughput because its single-frame latency causes "judder, lagging and
sickness" (Section 4.1).  This example makes that argument measurable:

1. render one workload under four schemes,
2. scale the measured latencies to Table 1's 116.64 Mpixel VR panel,
3. pace them through a 90 Hz HMD compositor with Asynchronous Time
   Warp filling missed vsyncs,
4. report fresh-frame rate, judder rate and worst lag streak.

Run:  python examples/vr_frame_pacing.py [workload]
"""

import sys

from repro.extensions.atw import ATWConfig, simulate_atw
from repro.experiments.runner import ExperimentConfig, scene_for
from repro.frameworks.base import build_framework

SCHEMES = ("baseline", "object", "afr", "oo-vr")
VR_PANEL_PIXELS = 58.32e6 * 2  # Table 1: 58.32 Mpixel per eye


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "HL2-1280"
    experiment = ExperimentConfig(draw_scale=0.5, num_frames=3)
    scene = scene_for(workload, experiment)
    scale = VR_PANEL_PIXELS / scene.frames[0].total_pixels
    atw = ATWConfig(refresh_hz=90.0, eye_width=scene.width, eye_height=scene.height)

    print(f"workload {workload}: {scene.num_draws} draws/frame, "
          f"{scene.frames[0].total_pixels / 1e6:.1f} Mpixel rendered")
    print(f"VR-panel scaling factor: {scale:.1f}x "
          f"(to {VR_PANEL_PIXELS / 1e6:.1f} Mpixel)")
    print(f"compositor: {atw.refresh_hz:.0f} Hz "
          f"(vsync every {1e3 / atw.refresh_hz:.1f} ms)\n")

    print(f"{'scheme':<10}{'latency ms':>12}{'fresh':>9}{'judder':>9}"
          f"{'worst lag':>11}")
    for scheme in SCHEMES:
        result = build_framework(scheme).render_scene(scene)
        latencies = [f.cycles * scale for f in result.steady_frames]
        report = simulate_atw(latencies, scheme, workload, atw=atw)
        print(
            f"{scheme:<10}{report.mean_latency_ms:>12.1f}"
            f"{100 * report.fresh_rate:>8.0f}%{100 * report.judder_rate:>8.0f}%"
            f"{report.worst_lag_vsyncs:>11d}"
        )
    print(
        "\nAFR pipelines frames for throughput but each frame still takes"
        "\none GPM's full render time, so it misses the most vsyncs; OO-VR"
        "\nshortens the critical path itself."
    )


if __name__ == "__main__":
    main()
